"""Fleet shard workers: one CloudHost per shard, batched-round IPC.

A shard is an ordinary :class:`~repro.core.cloud.CloudHost` owning a
subset of the fleet — quarantine, suspension, degraded-mode and
priority-round semantics are *the same code* the serial host runs,
which is what makes the scheduler's serial-vs-sharded equivalence an
invariant rather than a hope.

Two shard flavours share one interface (``admit`` / ``start_rounds`` /
``finish_rounds`` / ``evict`` / ``flight_snapshots`` / ``close``):

* :class:`ShardHost` — in-process, used by the inline backend and by
  each worker process internally.
* :class:`ShardWorkerHandle` — the driver side of one persistent worker
  process. Commands cross the pipe once per *batch* of rounds; a
  worker runs its batch locally and replies with one report (per-round
  accounting plus fresh tenant digests), so cross-process chatter is
  O(batches), never O(epochs).

Workers hold all simulation state; the driver only ever sees plain-data
specs, reports, digests and journal snapshots. Tenants are built from
their :class:`~repro.core.fleet.TenantSpec` *inside* the owning worker
from the same pickled-by-reference builder the driver would use, so a
tenant's seeded trajectory is independent of which process runs it.
"""

import multiprocessing

from repro.checkpoint.store import PageStore
from repro.core.cloud import CloudHost
from repro.errors import CrimesError


def _mp_context():
    # fork keeps already-imported builder modules available in the
    # child and is the cheap path on Linux; spawn is the portable
    # fallback (specs and builders are pickleable either way).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class ShardHost:
    """One shard: a CloudHost plus batched-round reporting.

    ``store_config`` (a plain pickleable dict of
    :class:`~repro.checkpoint.store.PageStore` constructor kwargs, or
    None) builds the shard's content-addressed page store *inside* the
    owning process — each shard owns its store outright, so no spill
    file or refcount is ever shared across process boundaries. The
    scheduler hands every shard a distinct ``spill_dir`` for the same
    reason.
    """

    def __init__(self, name, store_config=None):
        store = PageStore(**store_config) if store_config is not None \
            else None
        self.host = CloudHost(name=name, store=store)
        self._pending_rounds = None

    # -- shard interface ---------------------------------------------------

    def admit(self, spec):
        parts = spec.build()
        self.host.admit(
            parts["vm"],
            parts.get("config"),
            modules=parts.get("modules", ()),
            async_modules=parts.get("async_modules", ()),
            programs=parts.get("programs", ()),
            sla=spec.sla,
            fault_plan=parts.get("fault_plan"),
            priority=spec.priority,
        )
        return self.host.tenant_digests()[spec.name]

    def run_rounds(self, rounds):
        """Run up to ``rounds`` local rounds; returns the batch report.

        Emits one row per requested round even when this shard has no
        eligible tenant left (an all-zero row), so the scheduler can
        fold rows from every shard by batch offset. Empty rounds are
        no-ops: the underlying host neither counts nor journals them.
        """
        rows = []
        for index in range(rounds):
            before_quarantined = set(self.host.quarantined_tenants())
            scheduled = self.host.scheduled_tenants()
            records = self.host.run_round()
            quarantined = {
                name: self.host.tenants[name].quarantine_reason
                for name in self.host.quarantined_tenants()
                if name not in before_quarantined
            }
            rows.append({
                "round": index,
                "scheduled": len(scheduled),
                "ran": sorted(records),
                "quarantined": quarantined,
                "pause_ms": {name: record.pause_ms
                             for name, record in records.items()},
            })
        return {
            "rounds": rows,
            "digests": self.host.tenant_digests(),
            "active": len(self.host.active_tenants()),
            "store": (self.host.store.stats()
                      if self.host.store is not None else None),
        }

    def start_rounds(self, rounds):
        if self._pending_rounds is not None:
            raise CrimesError("shard %r already has a batch in flight"
                              % self.host.name)
        self._pending_rounds = rounds

    def finish_rounds(self):
        if self._pending_rounds is None:
            raise CrimesError("shard %r has no batch in flight"
                              % self.host.name)
        rounds = self._pending_rounds
        self._pending_rounds = None
        return self.run_rounds(rounds)

    def evict(self, name):
        digest = self.host.tenant_digests().get(name)
        self.host.evict(name)
        return digest

    def digests(self):
        return self.host.tenant_digests()

    def flight_snapshots(self):
        """Shard journal first, then every tenant's, for the fleet merge."""
        snapshots = [self.host.observer.flight.snapshot()]
        for name in sorted(self.host.tenants):
            snapshots.append(
                self.host.tenants[name].crimes.observer.flight.snapshot())
        return snapshots

    def close(self):
        """In-process shard: nothing to stop."""


def shard_worker_main(conn, shard_name, store_config=None):
    """Worker process entry point: serve shard commands until stopped.

    The protocol is strict request/reply: every received ``(op,
    payload)`` gets exactly one ``("ok", result)`` or ``("error",
    message)`` back. A :class:`CrimesError` is *transported* to the
    driver (which re-raises it as a FleetError), never dropped; any
    other exception is allowed to kill the worker — the driver sees the
    broken pipe and fails loudly rather than continuing on a shard in
    an unknown state.
    """
    shard = ShardHost(shard_name, store_config=store_config)
    handlers = {
        "admit": shard.admit,
        "run_rounds": shard.run_rounds,
        "evict": shard.evict,
        "digests": lambda payload: shard.digests(),
        "flight_snapshots": lambda payload: shard.flight_snapshots(),
    }
    while True:
        try:
            op, payload = conn.recv()
        except EOFError:
            return  # driver went away; shard state dies with us
        if op == "stop":
            conn.send(("ok", None))
            return
        handler = handlers.get(op)
        if handler is None:
            conn.send(("error", "unknown shard op %r" % op))
            continue
        try:
            result = handler(payload)
        except CrimesError as err:
            conn.send(("error", "%s: %s" % (type(err).__name__, err)))
        else:
            conn.send(("ok", result))


class ShardWorkerHandle:
    """Driver-side handle for one persistent shard worker process."""

    def __init__(self, process, conn, name):
        self.process = process
        self.conn = conn
        self.name = name
        self._in_flight = False
        self._closed = False

    @classmethod
    def launch(cls, index, name, store_config=None):
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, name, store_config),
            name="crimes-%s" % name.replace("/", "-"), daemon=True,
        )
        process.start()
        child_conn.close()
        return cls(process, parent_conn, name)

    # -- protocol ----------------------------------------------------------

    def _send(self, op, payload=None):
        if self._closed:
            raise CrimesError("shard worker %r is closed" % self.name)
        try:
            self.conn.send((op, payload))
        except (BrokenPipeError, OSError) as err:
            raise CrimesError(
                "shard worker %r is gone (%s)" % (self.name, err)
            ) from err

    def _recv(self):
        try:
            status, value = self.conn.recv()
        except EOFError as err:
            raise CrimesError(
                "shard worker %r died mid-command" % self.name
            ) from err
        if status == "error":
            raise CrimesError("shard %r: %s" % (self.name, value))
        return value

    def _call(self, op, payload=None):
        self._send(op, payload)
        return self._recv()

    # -- shard interface ---------------------------------------------------

    def admit(self, spec):
        return self._call("admit", spec)

    def start_rounds(self, rounds):
        """Ship a batch without waiting — workers run concurrently."""
        if self._in_flight:
            raise CrimesError("shard worker %r already has a batch in "
                              "flight" % self.name)
        self._send("run_rounds", rounds)
        self._in_flight = True

    def finish_rounds(self):
        if not self._in_flight:
            raise CrimesError("shard worker %r has no batch in flight"
                              % self.name)
        self._in_flight = False
        return self._recv()

    def run_rounds(self, rounds):
        return self._call("run_rounds", rounds)

    def evict(self, name):
        return self._call("evict", name)

    def digests(self):
        return self._call("digests")

    def flight_snapshots(self):
        return self._call("flight_snapshots")

    def close(self):
        if self._closed:
            return
        try:
            if self.process.is_alive():
                self.conn.send(("stop", None))
                self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass  # already gone; join/terminate below still applies
        self._closed = True
        self.conn.close()
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
