"""Asynchronous checkpoint scanning (the §5.3 future-work extension).

Expensive analyses run against the *committed backup checkpoint* on a
separate (modeled) core while the VM keeps executing epochs. The VM's
pause time is untouched; in exchange the guarantee weakens from
"zero-window" to a bounded detection lag:

    lag = (time between the snapshot and the verdict)
        = scan queueing + scan duration  (plus the epoch that produced
          the evidence, if the attack landed mid-epoch)

Outputs released while the scan was in flight have already escaped —
exactly the Best-Effort-style trade the paper describes for expensive
scanners like Volatility.
"""

from repro.detectors.base import DetectionResult, Severity
from repro.forensics.dumps import MemoryDump


class AsyncScanJob:
    """One in-flight deep scan of a committed checkpoint."""

    __slots__ = ("dump", "snapshot_epoch", "snapshot_time_ms", "started_at",
                 "completes_at", "modules")

    def __init__(self, dump, snapshot_epoch, snapshot_time_ms, started_at,
                 completes_at, modules):
        self.dump = dump
        self.snapshot_epoch = snapshot_epoch
        self.snapshot_time_ms = snapshot_time_ms
        self.started_at = started_at
        self.completes_at = completes_at
        self.modules = modules

    def __repr__(self):
        return "AsyncScanJob(epoch=%d, completes_at=%.1fms)" % (
            self.snapshot_epoch,
            self.completes_at,
        )


class AsyncVerdict:
    """The outcome of one completed deep scan."""

    __slots__ = ("job", "findings", "verdict_time_ms")

    def __init__(self, job, findings, verdict_time_ms):
        self.job = job
        self.findings = findings
        self.verdict_time_ms = verdict_time_ms

    @property
    def attack_detected(self):
        return any(f.severity is Severity.CRITICAL for f in self.findings)

    @property
    def detection_lag_ms(self):
        """Time between the scanned snapshot and the verdict."""
        return self.verdict_time_ms - self.job.snapshot_time_ms

    def critical_findings(self):
        return [f for f in self.findings if f.severity is Severity.CRITICAL]


class AsyncScanner:
    """Schedules deep scans over committed checkpoints.

    One scan runs at a time (one dedicated scanning core, as Aftersight
    dedicates a core — but here only *memory*, not a replaying CPU, is
    consumed). While busy, newer checkpoints are skipped, not queued:
    scanning the freshest committed state dominates scanning stale ones.
    """

    def __init__(self, clock, registry=None, flight=None):
        self.clock = clock
        self._flight = flight
        self.modules = []
        self._active_job = None
        self._pending_snapshot = None
        self.jobs_started = 0
        self.snapshots_skipped = 0
        self.jobs_cancelled = 0
        self.verdicts = []
        self._registry = registry
        if registry is not None:
            self._jobs_counter = registry.counter(
                "async.jobs_started", help="deep scans dispatched")
            self._skipped_counter = registry.counter(
                "async.snapshots_skipped",
                help="checkpoints not scanned because the core was busy")
            self._cancelled_counter = registry.counter(
                "async.jobs_cancelled",
                help="in-flight scans abandoned because their snapshot "
                     "was rolled back")
            self._lag_gauge = registry.gauge(
                "async.detection_lag_ms",
                help="snapshot-to-verdict lag of the latest deep scan")
            self._duration_hist = registry.histogram(
                "async.scan_duration_ms", help="deep scan durations")

    def install(self, module):
        self.modules.append(module)
        return module

    @property
    def busy(self):
        return self._active_job is not None

    def skip_snapshot(self):
        """Record a checkpoint passed over because the scanner was busy."""
        self.snapshots_skipped += 1
        if self._registry is not None:
            self._skipped_counter.inc()

    def offer_snapshot(self, vm, snapshot, epoch):
        """Offer a freshly committed checkpoint for deep scanning."""
        if not self.modules:
            return None
        if self._active_job is not None:
            self.skip_snapshot()
            return None
        dump = MemoryDump.from_snapshot(vm, snapshot,
                                        label="async-epoch-%d" % epoch)
        total_cost = sum(module.cost_ms(dump) for module in self.modules)
        job = AsyncScanJob(
            dump=dump,
            snapshot_epoch=epoch,
            snapshot_time_ms=snapshot.taken_at,
            started_at=self.clock.now,
            completes_at=self.clock.now + total_cost,
            modules=list(self.modules),
        )
        self._active_job = job
        self.jobs_started += 1
        if self._registry is not None:
            self._jobs_counter.inc()
        if self._flight is not None:
            self._flight.record(
                "async.dispatch", epoch=epoch,
                completes_at_ms=job.completes_at,
                modules=[module.name for module in job.modules],
            )
        return job

    def cancel(self, reason="rollback"):
        """Abandon the in-flight scan (its snapshot was just undone).

        A deep scan of an epoch the framework rolled back must never
        deliver a verdict: the state it scanned no longer exists, so a
        late "clean" would vouch for outputs that were already discarded
        and a late "attack" would punish a guest that was already reset.
        Returns the cancelled job, or None if the scanner was idle.
        """
        job, self._active_job = self._active_job, None
        if job is None:
            return None
        self.jobs_cancelled += 1
        if self._registry is not None:
            self._cancelled_counter.inc()
        if self._flight is not None:
            self._flight.record("async.cancelled", epoch=job.snapshot_epoch,
                                reason=reason)
        return job

    def poll(self):
        """Return the finished scan's verdict once the clock passes it."""
        job = self._active_job
        if job is None or self.clock.now < job.completes_at:
            return None
        self._active_job = None
        findings = []
        for module in job.modules:
            findings.extend(module.scan(job.dump) or [])
        verdict = AsyncVerdict(job, findings, verdict_time_ms=self.clock.now)
        self.verdicts.append(verdict)
        if self._registry is not None:
            self._lag_gauge.set(verdict.detection_lag_ms)
            self._duration_hist.observe(self.clock.now - job.started_at)
        if self._flight is not None:
            self._flight.record(
                "scan.verdict", epoch=job.snapshot_epoch, async_scan=True,
                findings=len(findings), attack=verdict.attack_detected,
                lag_ms=verdict.detection_lag_ms,
            )
        return verdict

    def as_detection_result(self, verdict):
        """Adapt an async verdict to the Detector's result type."""
        return DetectionResult(
            verdict.findings,
            cost_ms=0.0,  # paid off the VM's critical path
            modules_run=[module.name for module in verdict.job.modules],
            epoch=verdict.job.snapshot_epoch,
        )
