"""Asynchronous checkpoint scanning (the §5.3 future-work extension).

Expensive analyses run against the *committed backup checkpoint* on a
separate (modeled) core while the VM keeps executing epochs. The VM's
pause time is untouched; in exchange the guarantee weakens from
"zero-window" to a bounded detection lag:

    lag = (time between the snapshot and the verdict)
        = scan queueing + scan duration  (plus the epoch that produced
          the evidence, if the attack landed mid-epoch)

Outputs released while the scan was in flight have already escaped —
exactly the Best-Effort-style trade the paper describes for expensive
scanners like Volatility.
"""

from repro.detectors.base import DetectionResult, Severity
from repro.errors import NetbufReleaseError
from repro.forensics.dumps import MemoryDump


class AsyncScanJob:
    """One in-flight deep scan of a committed checkpoint."""

    __slots__ = ("dump", "snapshot_epoch", "snapshot_time_ms", "started_at",
                 "completes_at", "modules")

    def __init__(self, dump, snapshot_epoch, snapshot_time_ms, started_at,
                 completes_at, modules):
        self.dump = dump
        self.snapshot_epoch = snapshot_epoch
        self.snapshot_time_ms = snapshot_time_ms
        self.started_at = started_at
        self.completes_at = completes_at
        self.modules = modules

    def __repr__(self):
        return "AsyncScanJob(epoch=%d, completes_at=%.1fms)" % (
            self.snapshot_epoch,
            self.completes_at,
        )


class AsyncVerdict:
    """The outcome of one completed deep scan."""

    __slots__ = ("job", "findings", "verdict_time_ms")

    def __init__(self, job, findings, verdict_time_ms):
        self.job = job
        self.findings = findings
        self.verdict_time_ms = verdict_time_ms

    @property
    def attack_detected(self):
        return any(f.severity is Severity.CRITICAL for f in self.findings)

    @property
    def detection_lag_ms(self):
        """Time between the scanned snapshot and the verdict."""
        return self.verdict_time_ms - self.job.snapshot_time_ms

    def critical_findings(self):
        return [f for f in self.findings if f.severity is Severity.CRITICAL]


class DeferredRelease:
    """One audited-clean epoch whose outputs await their verdict time."""

    __slots__ = ("epoch", "ready_at_ms", "scan_cost_ms")

    def __init__(self, epoch, ready_at_ms, scan_cost_ms):
        self.epoch = epoch
        self.ready_at_ms = ready_at_ms
        self.scan_cost_ms = scan_cost_ms

    def __repr__(self):
        return "DeferredRelease(epoch=%d, ready_at=%.1fms)" % (
            self.epoch, self.ready_at_ms)


class OverlappedAudit:
    """Deferred output release for the overlapped synchronous audit.

    With ``config.overlap_audit`` the end-of-epoch scan runs against the
    staged copy on a modeled second core: the guest resumes right after
    the copy phase and the scan cost becomes *release lag* instead of
    pause time. The verdict itself is computed at the boundary (same
    reads, same findings, same jitter draws as the pause-and-scan
    pipeline); what moves in virtual time is when the epoch's buffered
    outputs may leave — never before ``commit_time + scan_cost``, so the
    escape window stays zero.

    The queue holds one entry per committed-but-unreleased epoch.
    :meth:`drain` releases every entry whose verdict time has passed; a
    downstream sink failure (NETBUF_RELEASE fault) leaves the entry
    queued so the next boundary retries it.
    """

    def __init__(self, clock, buffer, registry=None, flight=None):
        self.clock = clock
        self.buffer = buffer
        self._flight = flight
        self._queue = []
        self.releases = 0
        self.retries = 0
        self.max_release_lag_ms = 0.0
        if registry is not None:
            self._lag_gauge = registry.gauge(
                "overlap.release_lag_ms",
                help="commit-to-release lag of the latest overlapped epoch")
            self._queue_gauge = registry.gauge(
                "overlap.queued_epochs",
                help="committed epochs whose outputs await their verdict")
        else:
            self._lag_gauge = None
            self._queue_gauge = None

    @property
    def queued(self):
        """Epochs committed but not yet released, oldest first."""
        return [entry.epoch for entry in self._queue]

    def defer(self, epoch, scan_cost_ms):
        """Queue a clean epoch's outputs until its verdict time passes."""
        entry = DeferredRelease(
            epoch=epoch,
            ready_at_ms=self.clock.now + scan_cost_ms,
            scan_cost_ms=scan_cost_ms,
        )
        self._queue.append(entry)
        if self._flight is not None:
            self._flight.record(
                "overlap.deferred", epoch=epoch,
                ready_at_ms=entry.ready_at_ms,
            )
        if self._queue_gauge is not None:
            self._queue_gauge.set(len(self._queue))
        return entry

    def drain(self):
        """Release every queued epoch whose verdict time has passed.

        Returns ``(packets, disk_writes)`` released. Entries stay in
        commit order; a sink failure stops the drain (order-preserving —
        a newer epoch must not overtake a held older one).
        """
        packets = disk_writes = 0
        while self._queue and self._queue[0].ready_at_ms <= self.clock.now:
            entry = self._queue[0]
            try:
                released = self.buffer.release(entry.epoch)
            except NetbufReleaseError:
                self.retries += 1
                if self._flight is not None:
                    self._flight.record("overlap.release_held",
                                        epoch=entry.epoch)
                break
            self._queue.pop(0)
            packets += released[0]
            disk_writes += released[1]
            self.releases += 1
            lag = self.clock.now - (entry.ready_at_ms - entry.scan_cost_ms)
            self.max_release_lag_ms = max(self.max_release_lag_ms, lag)
            if self._lag_gauge is not None:
                self._lag_gauge.set(lag)
        if self._queue_gauge is not None:
            self._queue_gauge.set(len(self._queue))
        return packets, disk_writes

    def flush(self):
        """Release everything regardless of verdict time (shutdown path).

        Used when the epoch loop stops for good: the scans have no VM to
        race against any more, so waiting buys nothing.
        """
        if self._queue:
            barrier = max(entry.ready_at_ms for entry in self._queue)
            if self.clock.now < barrier:
                self.clock.advance(barrier - self.clock.now)
        return self.drain()

    def discard(self, reason="rollback"):
        """Drop the queue (the buffer's discard destroyed the outputs).

        A rollback annihilates every unreleased epoch — including
        audited-clean predecessors still waiting on their verdict time.
        Conservative by design: nothing unreleased survives an incident.
        """
        dropped, self._queue = [e.epoch for e in self._queue], []
        if dropped and self._flight is not None:
            self._flight.record("overlap.discarded", epochs=dropped,
                                reason=reason)
        if self._queue_gauge is not None:
            self._queue_gauge.set(0)
        return dropped


class AsyncScanner:
    """Schedules deep scans over committed checkpoints.

    One scan runs at a time (one dedicated scanning core, as Aftersight
    dedicates a core — but here only *memory*, not a replaying CPU, is
    consumed). While busy, newer checkpoints are skipped, not queued:
    scanning the freshest committed state dominates scanning stale ones.
    """

    def __init__(self, clock, registry=None, flight=None):
        self.clock = clock
        self._flight = flight
        self.modules = []
        self._active_job = None
        self._pending_snapshot = None
        self.jobs_started = 0
        self.snapshots_skipped = 0
        self.jobs_cancelled = 0
        self.verdicts = []
        self._registry = registry
        if registry is not None:
            self._jobs_counter = registry.counter(
                "async.jobs_started", help="deep scans dispatched")
            self._skipped_counter = registry.counter(
                "async.snapshots_skipped",
                help="checkpoints not scanned because the core was busy")
            self._cancelled_counter = registry.counter(
                "async.jobs_cancelled",
                help="in-flight scans abandoned because their snapshot "
                     "was rolled back")
            self._lag_gauge = registry.gauge(
                "async.detection_lag_ms",
                help="snapshot-to-verdict lag of the latest deep scan")
            self._duration_hist = registry.histogram(
                "async.scan_duration_ms", help="deep scan durations")

    def install(self, module):
        self.modules.append(module)
        return module

    @property
    def busy(self):
        return self._active_job is not None

    def skip_snapshot(self):
        """Record a checkpoint passed over because the scanner was busy."""
        self.snapshots_skipped += 1
        if self._registry is not None:
            self._skipped_counter.inc()

    def offer_snapshot(self, vm, snapshot, epoch):
        """Offer a freshly committed checkpoint for deep scanning."""
        if not self.modules:
            return None
        if self._active_job is not None:
            self.skip_snapshot()
            return None
        dump = MemoryDump.from_snapshot(vm, snapshot,
                                        label="async-epoch-%d" % epoch)
        total_cost = sum(module.cost_ms(dump) for module in self.modules)
        job = AsyncScanJob(
            dump=dump,
            snapshot_epoch=epoch,
            snapshot_time_ms=snapshot.taken_at,
            started_at=self.clock.now,
            completes_at=self.clock.now + total_cost,
            modules=list(self.modules),
        )
        self._active_job = job
        self.jobs_started += 1
        if self._registry is not None:
            self._jobs_counter.inc()
        if self._flight is not None:
            self._flight.record(
                "async.dispatch", epoch=epoch,
                completes_at_ms=job.completes_at,
                modules=[module.name for module in job.modules],
            )
        return job

    def cancel(self, reason="rollback"):
        """Abandon the in-flight scan (its snapshot was just undone).

        A deep scan of an epoch the framework rolled back must never
        deliver a verdict: the state it scanned no longer exists, so a
        late "clean" would vouch for outputs that were already discarded
        and a late "attack" would punish a guest that was already reset.
        Returns the cancelled job, or None if the scanner was idle.
        """
        job, self._active_job = self._active_job, None
        if job is None:
            return None
        self.jobs_cancelled += 1
        if self._registry is not None:
            self._cancelled_counter.inc()
        if self._flight is not None:
            self._flight.record("async.cancelled", epoch=job.snapshot_epoch,
                                reason=reason)
        return job

    def poll(self):
        """Return the finished scan's verdict once the clock passes it."""
        job = self._active_job
        if job is None or self.clock.now < job.completes_at:
            return None
        self._active_job = None
        findings = []
        for module in job.modules:
            findings.extend(module.scan(job.dump) or [])
        verdict = AsyncVerdict(job, findings, verdict_time_ms=self.clock.now)
        self.verdicts.append(verdict)
        if self._registry is not None:
            self._lag_gauge.set(verdict.detection_lag_ms)
            self._duration_hist.observe(self.clock.now - job.started_at)
        if self._flight is not None:
            self._flight.record(
                "scan.verdict", epoch=job.snapshot_epoch, async_scan=True,
                findings=len(findings), attack=verdict.attack_detected,
                lag_ms=verdict.detection_lag_ms,
            )
        return verdict

    def as_detection_result(self, verdict):
        """Adapt an async verdict to the Detector's result type."""
        return DetectionResult(
            verdict.findings,
            cost_ms=0.0,  # paid off the VM's critical path
            modules_run=[module.name for module in verdict.job.modules],
            epoch=verdict.job.snapshot_epoch,
        )
