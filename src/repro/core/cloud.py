"""Multi-tenant hosting: CRIMES as a cloud-provider service (§2).

The paper's pitch is that the *provider* runs CRIMES under every tenant
VM — "zero-touch", no in-guest agents, per-tenant security modules. A
:class:`CloudHost` manages a fleet of independently clocked, CRIMES-
protected tenants: admission, round-based driving, per-tenant incident
isolation, and host-level capacity accounting (how many audit-seconds
per wall-second the host's scanning cores must absorb, and the 2×
memory cost of keeping every tenant's backup image).
"""

from repro.core.config import CrimesConfig
from repro.core.crimes import Crimes
from repro.errors import CrimesError
from repro.obs.incident import INCIDENT_SCHEMA
from repro.obs.observer import Observer
from repro.sim.clock import VirtualClock

#: SLA class -> scheduling priority (higher runs earlier in a round).
#: An unknown SLA gets standard priority; ``admit(priority=...)``
#: overrides the mapping per tenant.
SLA_PRIORITY = {"premium": 2, "standard": 1, "batch": 0, "spot": 0}


class TenantRecord:
    """One tenant's registration on the host."""

    __slots__ = ("name", "crimes", "sla", "priority", "quarantined",
                 "quarantine_reason")

    def __init__(self, name, crimes, sla, priority=None):
        self.name = name
        self.crimes = crimes
        self.sla = sla
        self.priority = (priority if priority is not None
                         else SLA_PRIORITY.get(sla, 1))
        #: Set when the tenant's epoch loop raised out of run_epoch (a
        #: fault the framework could not absorb): the host fences the VM
        #: off instead of letting one tenant's failure stall the round.
        self.quarantined = False
        self.quarantine_reason = None

    @property
    def suspended(self):
        return self.crimes.suspended

    def schedule_key(self):
        """Round ordering: priority class first, then health.

        Tenants are independent (per-tenant clocks and seeds), so
        ordering never changes any tenant's trajectory — it only decides
        who waits on whom *within* a round's host wall time. High
        priority runs first; a degraded tenant (mid-hold, paying
        retry/backoff on every epoch) runs after its healthy shard
        neighbours so its recovery work cannot stall them. Name is the
        deterministic tie-break.
        """
        degraded = 1 if self.crimes.health != "healthy" else 0
        return (-self.priority, degraded, self.name)


class CloudHost:
    """A physical host running many CRIMES-protected tenant VMs.

    Each tenant advances on its own virtual timeline (VMs occupy
    different cores in a real host); the host aggregates security-side
    load so a provider can size scanning capacity.
    """

    def __init__(self, name="host-0", observer=None, store=None):
        self.name = name
        self.tenants = {}
        self.rounds_run = 0
        #: Optional shared content-addressed checkpoint store: every
        #: admitted tenant's checkpointer dedups its pages into it, so
        #: the host's checkpoint memory is the *deduped* resident set,
        #: not one flat backup per tenant.
        self.store = store
        # The host's own timeline and journal. Tenants keep their
        # independent clocks and hash chains; the host clock tracks the
        # *frontier* (the farthest any tenant has simulated) so
        # host-level events — round boundaries, admission decisions —
        # carry a meaningful virtual timestamp for the fleet merge.
        self.observer = (observer if observer is not None
                         else Observer(VirtualClock(), name=name))
        if store is not None:
            store.attach_registry(self.observer.registry)

    # -- admission ----------------------------------------------------------

    def admit(self, vm, config=None, modules=(), async_modules=(),
              programs=(), sla="standard", fault_plan=None, priority=None):
        """Bring a tenant VM under CRIMES protection; returns its Crimes."""
        if vm.name in self.tenants:
            raise CrimesError("tenant %r already admitted" % vm.name)
        crimes = Crimes(vm, config if config is not None else CrimesConfig(),
                        fault_plan=fault_plan, store=self.store)
        for module in modules:
            crimes.install_module(module)
        for module in async_modules:
            crimes.install_async_module(module)
        for program in programs:
            crimes.add_program(program)
        crimes.start()
        record = TenantRecord(vm.name, crimes, sla, priority=priority)
        self.tenants[vm.name] = record
        self.observer.journal(
            "fleet.admit", tenant=vm.name, sla=sla,
            priority=record.priority, memory_bytes=vm.memory.size,
        )
        return crimes

    def evict(self, name):
        record = self.tenants.pop(name, None)
        if record is None:
            raise CrimesError("no tenant named %r" % name)
        # Return every store reference the tenant holds — backup map,
        # delta ring, any staged epoch — so shared pages another tenant
        # still references survive while this tenant's exclusive pages
        # are freed. The leak/premature-free suites pin both directions.
        record.crimes.checkpointer.release_store_refs()
        self.observer.journal(
            "fleet.evict", tenant=name,
            quarantined=record.quarantined, suspended=record.suspended,
        )
        return record

    def tenant(self, name):
        try:
            return self.tenants[name].crimes
        except KeyError:
            raise CrimesError("no tenant named %r" % name) from None

    # -- driving -------------------------------------------------------------

    def active_tenants(self):
        return [record for record in self.tenants.values()
                if not record.suspended and not record.quarantined]

    def scheduled_tenants(self):
        """Active tenants in this round's dispatch order.

        Priority scheduling: premium SLAs first, degraded tenants last
        within their class (see :meth:`TenantRecord.schedule_key`).
        Ordering is pure dispatch policy — per-tenant trajectories are
        identical whatever the order, which is what lets the fleet
        scheduler shard this loop across processes at all.
        """
        return sorted(self.active_tenants(),
                      key=TenantRecord.schedule_key)

    def quarantined_tenants(self):
        """Names of tenants fenced off after an unabsorbed fault."""
        return [name for name, record in sorted(self.tenants.items())
                if record.quarantined]

    def _quarantine(self, record, err):
        """Fence a tenant whose epoch loop raised out of run_epoch."""
        record.quarantined = True
        record.quarantine_reason = str(err)
        # The epoch died mid-flight: any span the raising code path left
        # open (a third-party scan module that entered a span and blew
        # up) would otherwise sit on the stack forever and taint every
        # later trace export with ``unfinished: true``. Abort-close them
        # before journaling the fence, so the quarantine event carries
        # no stale causal span and the export tells a finished story.
        record.crimes.observer.tracer.abort_open(reason="quarantine")
        # The staged (uncommitted) epoch died with the loop: drop its
        # store references now. The backup and history refs stay — a
        # quarantined tenant's evidence is retained until eviction.
        record.crimes.checkpointer.release_staged_refs()
        record.crimes.observer.journal(
            "tenant.quarantined", reason=str(err),
        )

    def run_round(self):
        """Advance every non-suspended tenant by one epoch.

        Returns ``{tenant_name: EpochRecord}``; tenants whose audit
        failed are suspended individually — an incident on one tenant
        never touches another (the isolation §2 argues hypervisor-level
        placement buys). A tenant whose epoch loop *raises* (a fault its
        own retry/degraded machinery could not absorb) is quarantined:
        fenced out of future rounds, while every other tenant's epoch
        still runs this round.

        A round in which *no* tenant is eligible is a no-op: it neither
        advances ``rounds_run`` nor journals, exactly like ``run()``'s
        pre-check — round accounting is identical whether the host is
        driven through ``run()`` or by calling ``run_round()`` directly.
        """
        scheduled = self.scheduled_tenants()
        records = {}
        quarantined_now = 0
        for record in scheduled:
            try:
                records[record.name] = record.crimes.run_epoch()
            except CrimesError as err:
                self._quarantine(record, err)
                quarantined_now += 1
        if not scheduled:
            return records
        self.rounds_run += 1
        self._advance_host_clock()
        self.observer.journal(
            "fleet.round", round=self.rounds_run,
            scheduled=len(scheduled), ran=len(records),
            quarantined=quarantined_now,
            suspended_total=len(self.incidents()),
            quarantined_total=len(self.quarantined_tenants()),
            tenants_total=len(self.tenants),
        )
        return records

    def _advance_host_clock(self):
        """Move the host timeline to the fleet's virtual-time frontier."""
        frontier = max(
            (record.crimes.clock.now for record in self.tenants.values()),
            default=0.0,
        )
        if frontier > self.observer.clock.now:
            self.observer.clock.advance_to(frontier)

    def run(self, rounds):
        """Drive the fleet for ``rounds`` rounds; returns incident names."""
        for _ in range(rounds):
            if not self.active_tenants():
                break
            self.run_round()
        return sorted(self.incidents())

    # -- host-level accounting --------------------------------------------------

    def incidents(self):
        """Names of tenants currently suspended by a detection."""
        return [name for name, record in self.tenants.items()
                if record.suspended]

    def incident_outcomes(self):
        """Tenant -> AnalysisOutcome for auto-responded incidents."""
        return {
            name: record.crimes.last_outcome
            for name, record in self.tenants.items()
            if record.crimes.last_outcome is not None
        }

    def incident_bundles(self):
        """Tenant -> incident bundle, for every tenant that built one."""
        return {
            name: record.crimes.last_incident
            for name, record in sorted(self.tenants.items())
            if record.crimes.last_incident is not None
        }

    def host_incident_bundle(self):
        """One aggregate artifact for a multi-tenant incident.

        Each per-tenant bundle keeps its own hash chain (tenants run on
        independent virtual timelines); the host wraps them with the
        fleet rollup a provider's incident response starts from.
        """
        bundles = self.incident_bundles()
        return {
            "schema": INCIDENT_SCHEMA,
            "host": self.name,
            "rounds_run": self.rounds_run,
            "incident_tenants": sorted(bundles),
            "incidents": bundles,
            "fleet": self.observability_rollup()["fleet"],
        }

    def memory_overhead_bytes(self):
        """Extra RAM the checkpoint tier actually retains on this host.

        One accounting definition everywhere (the invariant the store
        equivalence/regression suites pin): bytes the checkpoint tier
        holds resident *right now*. For flat tenants that is each FULL
        backup image plus its private delta ring — an ACCOUNTING tenant
        keeps no backup and costs 0, and pages the dedup tier skipped
        are never re-counted. With a shared store it is the store's
        deduped resident set (hot raw + cold compressed), attributed
        per tenant by :meth:`PageStore.per_tenant`. Snapshot *offers*
        to the async scanner are transient copies in both modes and
        never move this number.
        """
        flat = sum(
            record.crimes.checkpointer.retained_bytes()
            for record in self.tenants.values()
        )
        if self.store is not None:
            return flat + self.store.resident_bytes
        return flat

    def tenant_digests(self):
        """name -> compact, comparable end-state for every tenant.

        This is the currency of the fleet scheduler's serial-vs-sharded
        equivalence guarantee: virtual clock, epoch count, incident /
        quarantine state, and the flight journal's rolling head hash.
        Two runs that agree on every digest simulated the same fleet —
        the hash chain covers every journaled event, so agreement is not
        a coincidence one can fake with matching counters.
        """
        digests = {}
        for name, record in sorted(self.tenants.items()):
            crimes = record.crimes
            digests[name] = {
                "clock_ms": crimes.clock.now,
                "epochs_run": crimes.epochs_run,
                "epochs_held": crimes.epochs_held,
                "epochs_shed": crimes.epochs_shed,
                "fault_rollbacks": crimes.fault_rollbacks,
                "health": crimes.health,
                "suspended": crimes.suspended,
                "quarantined": record.quarantined,
                "quarantine_reason": record.quarantine_reason,
                "flight_head": crimes.observer.flight.head_hash,
                "priority": record.priority,
                "sla": record.sla,
                "memory_bytes": crimes.vm.memory.size,
                # Dispatch estimate for the next round (virtual ms, so
                # scheduling stays deterministic): last epoch's pause
                # plus the configured interval, or the interval alone
                # before the first epoch completes.
                "est_cost_ms": (
                    crimes.config.epoch_interval_ms
                    + (crimes.records[-1].pause_ms if crimes.records else 0.0)
                ),
            }
        return digests

    def audit_seconds_per_wall_second(self):
        """Aggregate scan-core demand across the fleet.

        For each tenant: (mean audit cost) / (epoch interval + mean
        pause) — the fraction of one scanning core that tenant consumes.
        Summed over tenants, this tells the provider how many dedicated
        scan cores the host needs (the economy-of-scale number).
        """
        demand = 0.0
        for record in self.tenants.values():
            crimes = record.crimes
            breakdown = crimes.mean_phase_breakdown()
            interval = crimes.config.epoch_interval_ms
            cycle = interval + crimes.mean_pause_ms()
            if cycle > 0:
                demand += breakdown["vmi"] / cycle
        return demand

    def observability_rollup(self):
        """Per-tenant observer summaries plus fleet-level aggregates.

        The provider-side export: one full metrics/trace summary per
        tenant (each on its own virtual timeline) and the host-level
        rollup a capacity planner actually reads.
        """
        tenants = {
            name: record.crimes.observer.summary()
            for name, record in sorted(self.tenants.items())
        }
        epochs_total = sum(record.crimes.epochs_run
                           for record in self.tenants.values())
        pauses = [record.crimes.mean_pause_ms()
                  for record in self.tenants.values()
                  if record.crimes.records]
        rollup = {
            "host": self.name,
            "rounds_run": self.rounds_run,
            "host_journal": self.observer.flight.summary(),
            "fleet": {
                "tenants": len(self.tenants),
                "incidents": len(self.incidents()),
                "quarantined": len(self.quarantined_tenants()),
                "degraded": sum(
                    1 for record in self.tenants.values()
                    if record.crimes.health == "degraded"
                ),
                "epochs_held_total": sum(
                    record.crimes.epochs_held
                    for record in self.tenants.values()
                ),
                "epochs_total": epochs_total,
                "mean_pause_ms": (sum(pauses) / len(pauses)) if pauses
                else 0.0,
                "audit_seconds_per_wall_second":
                    self.audit_seconds_per_wall_second(),
                "memory_overhead_bytes": self.memory_overhead_bytes(),
            },
            "tenants": tenants,
        }
        if self.store is not None:
            self.store.export_metrics()
            rollup["store"] = {
                "stats": self.store.stats(),
                "per_tenant": self.store.per_tenant(),
            }
        return rollup

    def fleet_summary(self):
        """One status row per tenant (provider dashboard material)."""
        rows = []
        for name, record in sorted(self.tenants.items()):
            crimes = record.crimes
            if record.quarantined:
                status = "QUARANTINED"
            elif record.suspended:
                status = "SUSPENDED"
            elif crimes.health == "degraded":
                status = "degraded"
            else:
                status = "running"
            rows.append(
                {
                    "tenant": name,
                    "sla": record.sla,
                    "epochs": crimes.epochs_run,
                    "mean_pause_ms": round(crimes.mean_pause_ms(), 2),
                    "status": status,
                }
            )
        return rows
