"""Multi-tenant hosting: CRIMES as a cloud-provider service (§2).

The paper's pitch is that the *provider* runs CRIMES under every tenant
VM — "zero-touch", no in-guest agents, per-tenant security modules. A
:class:`CloudHost` manages a fleet of independently clocked, CRIMES-
protected tenants: admission, round-based driving, per-tenant incident
isolation, and host-level capacity accounting (how many audit-seconds
per wall-second the host's scanning cores must absorb, and the 2×
memory cost of keeping every tenant's backup image).
"""

from repro.core.config import CrimesConfig
from repro.core.crimes import Crimes
from repro.errors import CrimesError
from repro.obs.incident import INCIDENT_SCHEMA


class TenantRecord:
    """One tenant's registration on the host."""

    __slots__ = ("name", "crimes", "sla", "quarantined", "quarantine_reason")

    def __init__(self, name, crimes, sla):
        self.name = name
        self.crimes = crimes
        self.sla = sla
        #: Set when the tenant's epoch loop raised out of run_epoch (a
        #: fault the framework could not absorb): the host fences the VM
        #: off instead of letting one tenant's failure stall the round.
        self.quarantined = False
        self.quarantine_reason = None

    @property
    def suspended(self):
        return self.crimes.suspended


class CloudHost:
    """A physical host running many CRIMES-protected tenant VMs.

    Each tenant advances on its own virtual timeline (VMs occupy
    different cores in a real host); the host aggregates security-side
    load so a provider can size scanning capacity.
    """

    def __init__(self, name="host-0"):
        self.name = name
        self.tenants = {}
        self.rounds_run = 0

    # -- admission ----------------------------------------------------------

    def admit(self, vm, config=None, modules=(), async_modules=(),
              programs=(), sla="standard", fault_plan=None):
        """Bring a tenant VM under CRIMES protection; returns its Crimes."""
        if vm.name in self.tenants:
            raise CrimesError("tenant %r already admitted" % vm.name)
        crimes = Crimes(vm, config if config is not None else CrimesConfig(),
                        fault_plan=fault_plan)
        for module in modules:
            crimes.install_module(module)
        for module in async_modules:
            crimes.install_async_module(module)
        for program in programs:
            crimes.add_program(program)
        crimes.start()
        self.tenants[vm.name] = TenantRecord(vm.name, crimes, sla)
        return crimes

    def evict(self, name):
        record = self.tenants.pop(name, None)
        if record is None:
            raise CrimesError("no tenant named %r" % name)
        return record

    def tenant(self, name):
        try:
            return self.tenants[name].crimes
        except KeyError:
            raise CrimesError("no tenant named %r" % name) from None

    # -- driving -------------------------------------------------------------

    def active_tenants(self):
        return [record for record in self.tenants.values()
                if not record.suspended and not record.quarantined]

    def quarantined_tenants(self):
        """Names of tenants fenced off after an unabsorbed fault."""
        return [name for name, record in sorted(self.tenants.items())
                if record.quarantined]

    def run_round(self):
        """Advance every non-suspended tenant by one epoch.

        Returns ``{tenant_name: EpochRecord}``; tenants whose audit
        failed are suspended individually — an incident on one tenant
        never touches another (the isolation §2 argues hypervisor-level
        placement buys). A tenant whose epoch loop *raises* (a fault its
        own retry/degraded machinery could not absorb) is quarantined:
        fenced out of future rounds, while every other tenant's epoch
        still runs this round.
        """
        records = {}
        for record in self.active_tenants():
            try:
                records[record.name] = record.crimes.run_epoch()
            except CrimesError as err:
                record.quarantined = True
                record.quarantine_reason = str(err)
                record.crimes.observer.journal(
                    "tenant.quarantined", reason=str(err),
                )
        self.rounds_run += 1
        return records

    def run(self, rounds):
        """Drive the fleet for ``rounds`` rounds; returns incident names."""
        for _ in range(rounds):
            if not self.active_tenants():
                break
            self.run_round()
        return sorted(self.incidents())

    # -- host-level accounting --------------------------------------------------

    def incidents(self):
        """Names of tenants currently suspended by a detection."""
        return [name for name, record in self.tenants.items()
                if record.suspended]

    def incident_outcomes(self):
        """Tenant -> AnalysisOutcome for auto-responded incidents."""
        return {
            name: record.crimes.last_outcome
            for name, record in self.tenants.items()
            if record.crimes.last_outcome is not None
        }

    def incident_bundles(self):
        """Tenant -> incident bundle, for every tenant that built one."""
        return {
            name: record.crimes.last_incident
            for name, record in sorted(self.tenants.items())
            if record.crimes.last_incident is not None
        }

    def host_incident_bundle(self):
        """One aggregate artifact for a multi-tenant incident.

        Each per-tenant bundle keeps its own hash chain (tenants run on
        independent virtual timelines); the host wraps them with the
        fleet rollup a provider's incident response starts from.
        """
        bundles = self.incident_bundles()
        return {
            "schema": INCIDENT_SCHEMA,
            "host": self.name,
            "rounds_run": self.rounds_run,
            "incident_tenants": sorted(bundles),
            "incidents": bundles,
            "fleet": self.observability_rollup()["fleet"],
        }

    def memory_overhead_bytes(self):
        """Extra RAM the service costs: one backup image per tenant."""
        return sum(
            record.crimes.vm.memory.size for record in self.tenants.values()
        )

    def audit_seconds_per_wall_second(self):
        """Aggregate scan-core demand across the fleet.

        For each tenant: (mean audit cost) / (epoch interval + mean
        pause) — the fraction of one scanning core that tenant consumes.
        Summed over tenants, this tells the provider how many dedicated
        scan cores the host needs (the economy-of-scale number).
        """
        demand = 0.0
        for record in self.tenants.values():
            crimes = record.crimes
            breakdown = crimes.mean_phase_breakdown()
            interval = crimes.config.epoch_interval_ms
            cycle = interval + crimes.mean_pause_ms()
            if cycle > 0:
                demand += breakdown["vmi"] / cycle
        return demand

    def observability_rollup(self):
        """Per-tenant observer summaries plus fleet-level aggregates.

        The provider-side export: one full metrics/trace summary per
        tenant (each on its own virtual timeline) and the host-level
        rollup a capacity planner actually reads.
        """
        tenants = {
            name: record.crimes.observer.summary()
            for name, record in sorted(self.tenants.items())
        }
        epochs_total = sum(record.crimes.epochs_run
                           for record in self.tenants.values())
        pauses = [record.crimes.mean_pause_ms()
                  for record in self.tenants.values()
                  if record.crimes.records]
        return {
            "host": self.name,
            "rounds_run": self.rounds_run,
            "fleet": {
                "tenants": len(self.tenants),
                "incidents": len(self.incidents()),
                "quarantined": len(self.quarantined_tenants()),
                "degraded": sum(
                    1 for record in self.tenants.values()
                    if record.crimes.health == "degraded"
                ),
                "epochs_held_total": sum(
                    record.crimes.epochs_held
                    for record in self.tenants.values()
                ),
                "epochs_total": epochs_total,
                "mean_pause_ms": (sum(pauses) / len(pauses)) if pauses
                else 0.0,
                "audit_seconds_per_wall_second":
                    self.audit_seconds_per_wall_second(),
                "memory_overhead_bytes": self.memory_overhead_bytes(),
            },
            "tenants": tenants,
        }

    def fleet_summary(self):
        """One status row per tenant (provider dashboard material)."""
        rows = []
        for name, record in sorted(self.tenants.items()):
            crimes = record.crimes
            if record.quarantined:
                status = "QUARANTINED"
            elif record.suspended:
                status = "SUSPENDED"
            elif crimes.health == "degraded":
                status = "degraded"
            else:
                status = "running"
            rows.append(
                {
                    "tenant": name,
                    "sla": record.sla,
                    "epochs": crimes.epochs_run,
                    "mean_pause_ms": round(crimes.mean_pause_ms(), 2),
                    "status": status,
                }
            )
        return rows
