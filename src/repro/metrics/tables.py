"""Text rendering of tables and figure series for the bench harness."""


def format_table(rows, columns, title=None):
    """Fixed-width text table from dict rows."""
    if not rows:
        return (title + "\n(no rows)") if title else "(no rows)"
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    rule = "-" * len(header)
    lines = []
    if title:
        lines.extend([title, "=" * len(title)])
    lines.extend([header, rule])
    for row in rows:
        lines.append(
            "  ".join(
                str(row.get(column, "")).ljust(widths[column])
                for column in columns
            )
        )
    return "\n".join(lines)


def format_series(name, xs, ys, x_label="x", y_label="y", fmt="%.3f"):
    """One figure series as aligned text (x -> y pairs)."""
    lines = ["%s  (%s -> %s)" % (name, x_label, y_label)]
    for x, y in zip(xs, ys):
        lines.append("  %-10s %s" % (x, fmt % y))
    return "\n".join(lines)
