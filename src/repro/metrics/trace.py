"""ASCII execution traces (a textual Figure 2).

Renders a sequence of :class:`~repro.core.crimes.EpochRecord` as the
paper's timeline: speculative execution segments, pause segments with
their audit verdicts, and what each commit released. Useful in examples
and operator tooling.
"""

_SPECULATE_CHAR = "="
_PAUSE_CHAR = "#"


def render_epoch_trace(records, width=64):
    """One line per epoch: proportional speculate/pause bars + verdict.

    ``width`` columns represent the longest epoch's (interval + pause).
    """
    if not records:
        return "(no epochs)"
    scale = max(record.interval_ms + record.pause_ms for record in records)
    lines = [
        "epoch  timeline (%s speculate, %s pause)%s verdict"
        % (_SPECULATE_CHAR, _PAUSE_CHAR, " " * max(width - 36, 1)),
    ]
    for record in records:
        speculate_cols = max(int(record.interval_ms / scale * width), 1)
        pause_cols = max(int(record.pause_ms / scale * width), 1)
        bar = (_SPECULATE_CHAR * speculate_cols
               + _PAUSE_CHAR * pause_cols).ljust(width + 2)
        if record.committed:
            verdict = "pass"
            if record.released_packets or record.released_disk_writes:
                verdict += " (released %dp/%dw)" % (
                    record.released_packets, record.released_disk_writes,
                )
        else:
            kinds = ", ".join(
                sorted({finding.kind for finding in
                        record.detection.critical_findings()})
            ) if record.detection else "unknown"
            verdict = "FAIL: %s" % kinds
        lines.append("%5d  %s %s" % (record.epoch, bar, verdict))
    return "\n".join(lines)


def render_phase_bars(phase_ms, width=40):
    """Horizontal bars for one epoch's pause-phase breakdown (Figure 4)."""
    total = sum(phase_ms.values())
    if total <= 0:
        return "(no pause)"
    lines = []
    for phase, value in phase_ms.items():
        columns = int(round(value / total * width))
        lines.append(
            "%-8s %-*s %6.2f ms (%4.1f%%)"
            % (phase, width, "#" * columns, value, 100 * value / total)
        )
    return "\n".join(lines)
