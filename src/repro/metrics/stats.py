"""Small statistics helpers (the paper reports geometric means)."""

import math


def mean(values):
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values):
    """Geometric mean (used for Figure 3's suite-wide overhead)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def normalize_series(values, baseline):
    """Divide each value by the baseline (normalized-runtime plots)."""
    if baseline == 0:
        raise ValueError("cannot normalize by zero baseline")
    return [value / baseline for value in values]
