"""Shared measurement helpers for the benchmark harness."""

from repro.metrics.stats import geometric_mean, mean, normalize_series
from repro.metrics.tables import format_series, format_table

__all__ = [
    "geometric_mean",
    "mean",
    "normalize_series",
    "format_series",
    "format_table",
]
