"""Xen-style hypervisor control plane.

Provides the mechanisms CRIMES builds on: domains with pause/resume,
log-dirty page tracking, foreign-memory mapping (with hypercall
accounting), and memory-event rings for write-trap monitoring during
replay.
"""

from repro.hypervisor.dirty import DirtyBitmap, ScanStats
from repro.hypervisor.events import MemEvent, MemoryEventMonitor
from repro.hypervisor.foreign_map import MappingTable
from repro.hypervisor.xen import Domain, DomainState, Hypervisor

__all__ = [
    "DirtyBitmap",
    "ScanStats",
    "MemEvent",
    "MemoryEventMonitor",
    "MappingTable",
    "Domain",
    "DomainState",
    "Hypervisor",
]
