"""Xen-style memory-event monitoring.

Each domain owns a ring buffer of events consumed by external tools
(LibVMI's ``VMI_EVENT_MEMORY`` wraps this). Registering a frame write-traps
it: every store touching the frame appends a byte-precise event. This is
the expensive facility CRIMES enables *only* during replay (§4.2).
"""

from collections import deque

from repro.errors import HypervisorError
from repro.guest.memory import PAGE_SIZE


class MemEvent:
    """One trapped memory write."""

    #: Written bytes retained per event (enough to inspect a canary).
    DATA_CAPTURE_LIMIT = 256

    __slots__ = ("pfn", "paddr", "length", "time_ms", "rip", "data")

    def __init__(self, pfn, paddr, length, time_ms, rip=0, data=b""):
        self.pfn = pfn
        self.paddr = paddr
        self.length = length
        self.time_ms = time_ms
        self.rip = rip
        self.data = data

    def bytes_at(self, paddr, length):
        """The bytes this write placed in ``[paddr, paddr+length)``.

        Returns None if the write does not fully cover that range (a
        partial overwrite — inherently corrupting for a canary) or if the
        range lies beyond the captured prefix.
        """
        start = paddr - self.paddr
        if start < 0 or start + length > min(self.length, len(self.data)):
            return None
        return self.data[start : start + length]

    def covers(self, paddr, length=1):
        """Does this write overlap the physical byte range?"""
        return self.paddr < paddr + length and paddr < self.paddr + self.length

    def __repr__(self):
        return "MemEvent(pfn=%d, paddr=0x%x, len=%d, t=%.3fms)" % (
            self.pfn,
            self.paddr,
            self.length,
            self.time_ms,
        )


class MemoryEventMonitor:
    """Write-traps selected frames of one guest and queues events."""

    RING_CAPACITY = 4096

    def __init__(self, vm, clock):
        self._vm = vm
        self._clock = clock
        self._watched = set()
        self._ring = deque()
        self._attached = False
        self.events_trapped = 0
        self.events_dropped = 0

    def watch_frame(self, pfn):
        """Write-trap one physical frame."""
        if not (0 <= pfn < self._vm.memory.frame_count):
            raise HypervisorError("cannot watch frame %d" % pfn)
        self._watched.add(pfn)

    def watch_paddr(self, paddr):
        self.watch_frame(paddr // PAGE_SIZE)

    def attach(self):
        """Enable trapping (marks the frames read-only in a real Xen)."""
        if self._attached:
            raise HypervisorError("monitor already attached")
        self._vm.memory.add_write_observer(self._on_write)
        self._attached = True

    def detach(self):
        if self._attached:
            self._vm.memory.remove_write_observer(self._on_write)
            self._attached = False

    @property
    def attached(self):
        return self._attached

    def _on_write(self, paddr, data):
        length = len(data)
        first = paddr // PAGE_SIZE
        last = (paddr + max(length, 1) - 1) // PAGE_SIZE
        for pfn in range(first, last + 1):
            if pfn in self._watched:
                if len(self._ring) >= self.RING_CAPACITY:
                    self._ring.popleft()
                    self.events_dropped += 1
                self._ring.append(
                    MemEvent(
                        pfn, paddr, length, self._clock.now,
                        rip=self._vm.cpu.get("rip", 0),
                        data=data[: MemEvent.DATA_CAPTURE_LIMIT],
                    )
                )
                self.events_trapped += 1
                break

    def poll(self):
        """Drain and return all queued events (LibVMI's events_listen loop)."""
        events = list(self._ring)
        self._ring.clear()
        return events

    def pending(self):
        return len(self._ring)
