"""Foreign-memory mapping bookkeeping (§4.1, Optimizations 1 and 2).

``xenforeignmemory_map`` lets a Domain-0 process map guest frames into its
own address space. Remus maps the epoch's dirty pages and unmaps them each
interval; CRIMES builds one global PFN→MFN table at start-up and keeps
every frame mapped. The table records how many map/unmap *hypercalls* each
strategy performs so the cost model can price them (each mapping adjusts
page tables and is expensive).
"""


class MappingTable:
    """Tracks which guest frames a Dom0 process currently has mapped."""

    def __init__(self, frame_count):
        self.frame_count = frame_count
        self._mapped = set()
        self.map_calls = 0
        self.pages_mapped_total = 0
        self.pages_unmapped_total = 0
        self.pfn_to_mfn_lookups = 0

    def map_pages(self, pfns):
        """Map the given frames; returns the number of *new* mappings made."""
        new = [pfn for pfn in pfns if pfn not in self._mapped]
        self._mapped.update(new)
        if new:
            self.map_calls += 1
            self.pages_mapped_total += len(new)
        self.pfn_to_mfn_lookups += len(pfns)
        return len(new)

    def map_all(self):
        """Global mapping: map the entire guest once (CRIMES Optimization 2)."""
        return self.map_pages(range(self.frame_count))

    def unmap_pages(self, pfns):
        """Unmap frames; returns how many were actually mapped."""
        present = [pfn for pfn in pfns if pfn in self._mapped]
        self._mapped.difference_update(present)
        self.pages_unmapped_total += len(present)
        return len(present)

    def is_mapped(self, pfn):
        return pfn in self._mapped

    def mapped_count(self):
        return len(self._mapped)
