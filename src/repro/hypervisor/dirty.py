"""Log-dirty bitmap and the two scan strategies of §4.1 (Optimization 3).

Remus scans the dirty bitmap bit by bit; CRIMES scans a machine word at a
time, skipping zero words — exploiting the fact that most of memory is
clean and dirty pages cluster. Both strategies are implemented for real
over a word-array bitmap, and both report visit statistics the cost model
converts into virtual time (Figure 6b).
"""

from repro.errors import HypervisorError

WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


class ScanStats:
    """How much work a bitmap scan performed."""

    __slots__ = ("words_visited", "bits_visited", "dirty_found")

    def __init__(self, words_visited=0, bits_visited=0, dirty_found=0):
        self.words_visited = words_visited
        self.bits_visited = bits_visited
        self.dirty_found = dirty_found

    def __repr__(self):
        return "ScanStats(words=%d, bits=%d, dirty=%d)" % (
            self.words_visited,
            self.bits_visited,
            self.dirty_found,
        )


class DirtyBitmap:
    """One bit per physical frame, stored as 64-bit words."""

    def __init__(self, frame_count):
        if frame_count <= 0:
            raise HypervisorError("frame_count must be positive")
        self.frame_count = frame_count
        self.word_count = (frame_count + WORD_BITS - 1) // WORD_BITS
        self._words = [0] * self.word_count
        self._dirty_count = 0

    def set(self, pfn):
        if not (0 <= pfn < self.frame_count):
            raise HypervisorError("pfn %d outside bitmap" % pfn)
        word, bit = divmod(pfn, WORD_BITS)
        mask = 1 << bit
        if not self._words[word] & mask:
            self._words[word] |= mask
            self._dirty_count += 1

    def test(self, pfn):
        if not (0 <= pfn < self.frame_count):
            raise HypervisorError("pfn %d outside bitmap" % pfn)
        word, bit = divmod(pfn, WORD_BITS)
        return bool(self._words[word] & (1 << bit))

    def count(self):
        """Number of dirty frames (O(1) bookkeeping, not a scan)."""
        return self._dirty_count

    def clear(self):
        self._words = [0] * self.word_count
        self._dirty_count = 0

    # -- scans ------------------------------------------------------------

    def scan_bit_by_bit(self):
        """Remus-style scan: visit every bit. Returns (dirty_pfns, stats)."""
        dirty = []
        for word_index, word in enumerate(self._words):
            base = word_index * WORD_BITS
            for bit in range(WORD_BITS):
                pfn = base + bit
                if pfn >= self.frame_count:
                    break
                if word & (1 << bit):
                    dirty.append(pfn)
        stats = ScanStats(
            words_visited=self.word_count,
            bits_visited=self.frame_count,
            dirty_found=len(dirty),
        )
        return dirty, stats

    def scan_by_words(self):
        """CRIMES scan: skip zero words, expand only non-zero ones."""
        dirty = []
        bits_visited = 0
        for word_index, word in enumerate(self._words):
            if word == 0:
                continue
            base = word_index * WORD_BITS
            bits_visited += WORD_BITS
            while word:
                low = word & -word
                dirty.append(base + low.bit_length() - 1)
                word ^= low
        dirty = [pfn for pfn in dirty if pfn < self.frame_count]
        stats = ScanStats(
            words_visited=self.word_count,
            bits_visited=bits_visited,
            dirty_found=len(dirty),
        )
        return dirty, stats

    def harvest(self, optimized):
        """Scan with the selected strategy, then clear (read-and-reset).

        This models ``XEN_DOMCTL_SHADOW_OP_CLEAN``: the hypervisor hands
        the checkpointer the set of frames dirtied this epoch and resets
        tracking for the next one.
        """
        if optimized:
            dirty, stats = self.scan_by_words()
        else:
            dirty, stats = self.scan_bit_by_bit()
        self.clear()
        return dirty, stats

    def load_random(self, rng, dirty_fraction):
        """Populate with random dirty bits (Figure 6b's simulated bitmaps).

        Frames are drawn *without* replacement so the bitmap hits the
        requested count exactly — sampling with replacement undershoots
        the density through collisions, badly at Figure 6b's higher
        dirty fractions.
        """
        self.clear()
        expected = min(int(self.frame_count * dirty_fraction),
                       self.frame_count)
        for pfn in rng.sample(range(self.frame_count), expected):
            self.set(pfn)
