"""Log-dirty bitmap and the two scan strategies of §4.1 (Optimization 3).

Remus scans the dirty bitmap bit by bit; CRIMES scans a machine word at a
time, skipping zero words — exploiting the fact that most of memory is
clean and dirty pages cluster. Both strategies are implemented for real
over a word-array bitmap, and both report visit statistics the cost model
converts into virtual time (Figure 6b).

The bitmap is backed by a flat ``bytearray`` (one bit per frame, 64-bit
words stored little-endian) so the optimized scan can extract the dirty
set in bulk — through ``numpy`` when available, or a word-at-a-time
``memoryview`` cast otherwise — instead of a per-word Python loop. The
reported :class:`ScanStats` are bit-identical either way: the *virtual*
cost of a scan is a function of the bitmap contents, never of the host
implementation.
"""

import sys

from repro.errors import HypervisorError

try:  # optional accelerator: the container may not ship numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback paths
    _np = None

WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1
_LITTLE_ENDIAN = sys.byteorder == "little"

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(value):
        return bin(value).count("1")


class ScanStats:
    """How much work a bitmap scan performed."""

    __slots__ = ("words_visited", "bits_visited", "dirty_found")

    def __init__(self, words_visited=0, bits_visited=0, dirty_found=0):
        self.words_visited = words_visited
        self.bits_visited = bits_visited
        self.dirty_found = dirty_found

    def __repr__(self):
        return "ScanStats(words=%d, bits=%d, dirty=%d)" % (
            self.words_visited,
            self.bits_visited,
            self.dirty_found,
        )


class DirtyBitmap:
    """One bit per physical frame, stored as 64-bit words."""

    def __init__(self, frame_count):
        if frame_count <= 0:
            raise HypervisorError("frame_count must be positive")
        self.frame_count = frame_count
        self.word_count = (frame_count + WORD_BITS - 1) // WORD_BITS
        self._bits = bytearray(self.word_count * 8)
        self._dirty_count = 0
        # Mask for the final (possibly partial) word: bits at or beyond
        # frame_count can never be set through the public API, but the
        # scans mask them anyway so a corrupted tail cannot leak bogus
        # pfns into the dirty set.
        tail_bits = frame_count - (self.word_count - 1) * WORD_BITS
        self._final_word_mask = (1 << tail_bits) - 1

    def set(self, pfn):
        if not (0 <= pfn < self.frame_count):
            raise HypervisorError("pfn %d outside bitmap" % pfn)
        index = pfn >> 3
        mask = 1 << (pfn & 7)
        byte = self._bits[index]
        if not byte & mask:
            self._bits[index] = byte | mask
            self._dirty_count += 1

    def set_many(self, pfns):
        """Mark many frames dirty in one call (bulk-workload fast path).

        Validates the whole batch up front, so a bad pfn leaves the
        bitmap untouched.
        """
        pfns = pfns if isinstance(pfns, (list, tuple)) else list(pfns)
        if not pfns:
            return
        if min(pfns) < 0 or max(pfns) >= self.frame_count:
            raise HypervisorError(
                "set_many: pfns must lie in [0, %d)" % self.frame_count
            )
        bits = self._bits
        added = 0
        for pfn in pfns:
            index = pfn >> 3
            mask = 1 << (pfn & 7)
            byte = bits[index]
            if not byte & mask:
                bits[index] = byte | mask
                added += 1
        self._dirty_count += added

    def set_range(self, first_pfn, last_pfn):
        """Mark the inclusive frame range dirty (multi-frame store path).

        This is the hook a bulk guest store notifies once, instead of one
        observer call per frame; interior whole bytes are filled with a
        single slice store.
        """
        if first_pfn > last_pfn:
            return
        if first_pfn < 0 or last_pfn >= self.frame_count:
            raise HypervisorError(
                "frame range [%d, %d] outside bitmap of %d frames"
                % (first_pfn, last_pfn, self.frame_count)
            )
        bits = self._bits
        first_byte, first_bit = divmod(first_pfn, 8)
        last_byte, last_bit = divmod(last_pfn, 8)
        added = 0
        if first_byte == last_byte:
            mask = ((2 << last_bit) - 1) & ~((1 << first_bit) - 1)
            old = bits[first_byte]
            new = old | mask
            if new != old:
                added += _popcount(new ^ old)
                bits[first_byte] = new
        else:
            old = bits[first_byte]
            new = old | (0xFF & ~((1 << first_bit) - 1))
            added += _popcount(new ^ old)
            bits[first_byte] = new
            old = bits[last_byte]
            new = old | ((2 << last_bit) - 1)
            added += _popcount(new ^ old)
            bits[last_byte] = new
            interior = last_byte - first_byte - 1
            if interior:
                existing = _popcount(
                    int.from_bytes(bits[first_byte + 1 : last_byte], "little")
                )
                added += interior * 8 - existing
                bits[first_byte + 1 : last_byte] = b"\xff" * interior
        self._dirty_count += added

    def test(self, pfn):
        if not (0 <= pfn < self.frame_count):
            raise HypervisorError("pfn %d outside bitmap" % pfn)
        return bool(self._bits[pfn >> 3] & (1 << (pfn & 7)))

    def count(self):
        """Number of dirty frames (O(1) bookkeeping, not a scan)."""
        return self._dirty_count

    def clear(self):
        self._bits = bytearray(self.word_count * 8)
        self._dirty_count = 0

    # -- scans ------------------------------------------------------------

    def _word_values(self):
        """The bitmap as a sequence of 64-bit word values (zero-copy on
        little-endian hosts)."""
        if _LITTLE_ENDIAN:
            return memoryview(self._bits).cast("Q")
        return [
            int.from_bytes(self._bits[index * 8 : index * 8 + 8], "little")
            for index in range(self.word_count)
        ]

    def scan_bit_by_bit(self):
        """Remus-style scan: visit every bit. Returns (dirty_pfns, stats)."""
        dirty = []
        for word_index, word in enumerate(self._word_values()):
            base = word_index * WORD_BITS
            for bit in range(WORD_BITS):
                pfn = base + bit
                if pfn >= self.frame_count:
                    break
                if word & (1 << bit):
                    dirty.append(pfn)
        stats = ScanStats(
            words_visited=self.word_count,
            bits_visited=self.frame_count,
            dirty_found=len(dirty),
        )
        return dirty, stats

    def scan_by_words(self):
        """CRIMES scan: skip zero words, expand only non-zero ones.

        Extracted in bulk (numpy when available); the final partial word
        is masked once instead of tail-filtering the whole result list.
        """
        if _np is not None:
            dirty, nonzero_words = self._scan_bulk()
        else:
            dirty, nonzero_words = self._scan_words_python()
        stats = ScanStats(
            words_visited=self.word_count,
            bits_visited=nonzero_words * WORD_BITS,
            dirty_found=len(dirty),
        )
        return dirty, stats

    def _scan_bulk(self):
        """Vectorized dirty-set extraction; same results as the fallback."""
        raw = _np.frombuffer(self._bits, dtype=_np.uint8)
        bits = _np.unpackbits(raw, bitorder="little")
        # Slicing to frame_count masks the final partial word's tail.
        dirty = _np.flatnonzero(bits[: self.frame_count]).tolist()
        words = _np.frombuffer(self._bits, dtype=_np.uint64)
        return dirty, int(_np.count_nonzero(words))

    def _scan_words_python(self):
        dirty = []
        nonzero_words = 0
        last_index = self.word_count - 1
        for word_index, word in enumerate(self._word_values()):
            if word == 0:
                continue
            nonzero_words += 1
            if word_index == last_index:
                word &= self._final_word_mask
            base = word_index * WORD_BITS
            while word:
                low = word & -word
                dirty.append(base + low.bit_length() - 1)
                word ^= low
        return dirty, nonzero_words

    def harvest(self, optimized):
        """Scan with the selected strategy, then clear (read-and-reset).

        This models ``XEN_DOMCTL_SHADOW_OP_CLEAN``: the hypervisor hands
        the checkpointer the set of frames dirtied this epoch and resets
        tracking for the next one.
        """
        if optimized:
            dirty, stats = self.scan_by_words()
        else:
            dirty, stats = self.scan_bit_by_bit()
        self.clear()
        return dirty, stats

    def load_random(self, rng, dirty_fraction):
        """Populate with random dirty bits (Figure 6b's simulated bitmaps).

        Frames are drawn *without* replacement so the bitmap hits the
        requested count exactly — sampling with replacement undershoots
        the density through collisions, badly at Figure 6b's higher
        dirty fractions.
        """
        valid = (
            isinstance(dirty_fraction, (int, float))
            and 0.0 <= dirty_fraction <= 1.0  # NaN compares false
        )
        if not valid:
            raise HypervisorError(
                "dirty_fraction must be a number in [0, 1], got %r"
                % (dirty_fraction,)
            )
        self.clear()
        expected = min(int(self.frame_count * dirty_fraction),
                       self.frame_count)
        self.set_many(rng.sample(range(self.frame_count), expected))
