"""Domains and the hypervisor itself.

A :class:`Domain` wraps a guest VM with the control-plane facilities Xen
gives Dom0: pause/resume, log-dirty tracking, foreign mapping, and
memory-event monitoring. The :class:`Hypervisor` hosts domains over a
shared virtual clock.
"""

import enum

from repro.errors import DomainStateError, HypervisorError
from repro.hypervisor.dirty import DirtyBitmap
from repro.hypervisor.events import MemoryEventMonitor
from repro.hypervisor.foreign_map import MappingTable
from repro.sim.clock import VirtualClock


class DomainState(enum.Enum):
    RUNNING = "running"
    PAUSED = "paused"
    SUSPENDED = "suspended"
    DESTROYED = "destroyed"


class Domain:
    """One guest VM under hypervisor control."""

    def __init__(self, domid, vm, clock):
        self.domid = domid
        self.vm = vm
        self.clock = clock
        self.state = DomainState.RUNNING
        self.dirty_bitmap = DirtyBitmap(vm.memory.frame_count)
        self._log_dirty_enabled = False
        self.event_monitor = MemoryEventMonitor(vm, clock)

    # -- log-dirty mode ------------------------------------------------------

    def enable_log_dirty(self):
        if self._log_dirty_enabled:
            return
        # Range observer: one callback per store, however many frames it
        # spans, with whole-byte bitmap fills for large spans — the
        # batched dispatch path of the write-notification fast path.
        self.vm.memory.add_dirty_range_observer(self.dirty_bitmap.set_range)
        self._log_dirty_enabled = True

    def disable_log_dirty(self):
        if not self._log_dirty_enabled:
            return
        self.vm.memory.remove_dirty_range_observer(self.dirty_bitmap.set_range)
        self._log_dirty_enabled = False

    @property
    def log_dirty_enabled(self):
        return self._log_dirty_enabled

    def harvest_dirty(self, optimized, fault=None, injector=None):
        """Harvest-and-clear the dirty bitmap, surviving harvest faults.

        The fault is probed *before* the read-and-reset runs: a harvest
        that ultimately fails leaves the bitmap untouched, so rollback's
        candidate set (which reads the live bitmap) is never lost to a
        faulting control plane. Returns ``(dirty_pfns, stats,
        backoff_ms)`` where ``backoff_ms`` is the retry cost to charge
        to the bitscan phase; raises :class:`HypervisorError` if the
        fault exhausts the retry budget.
        """
        backoff_ms = 0.0
        if fault is not None:
            outcome = injector.retry(fault, site="bitmap-harvest")
            backoff_ms = outcome.backoff_ms
            if not outcome.success:
                raise HypervisorError(
                    "dirty-bitmap harvest failed after %d attempt(s) "
                    "(domain %d)" % (outcome.attempts, self.domid)
                )
        dirty, stats = self.dirty_bitmap.harvest(optimized)
        return dirty, stats, backoff_ms

    # -- lifecycle ------------------------------------------------------------

    def pause(self):
        if self.state is not DomainState.RUNNING:
            raise DomainStateError(
                "cannot pause domain %d in state %s" % (self.domid, self.state)
            )
        self.vm.pause()
        self.state = DomainState.PAUSED

    def resume(self):
        if self.state is not DomainState.PAUSED:
            raise DomainStateError(
                "cannot resume domain %d in state %s" % (self.domid, self.state)
            )
        self.vm.resume()
        self.state = DomainState.RUNNING

    def suspend(self):
        """Permanent stop (attack response); cannot be resumed."""
        if self.state is DomainState.RUNNING:
            self.vm.pause()
        self.state = DomainState.SUSPENDED

    def destroy(self):
        self.state = DomainState.DESTROYED

    # -- foreign mapping ---------------------------------------------------------

    def new_mapping_table(self):
        """A fresh Dom0-process view of this domain's frames."""
        return MappingTable(self.vm.memory.frame_count)


class Hypervisor:
    """Hosts domains; the root object benchmarks construct."""

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else VirtualClock()
        self.domains = {}
        self._next_domid = 1

    def create_domain(self, vm):
        if vm.clock is not self.clock:
            raise HypervisorError(
                "guest VM must share the hypervisor's clock; pass clock= when "
                "constructing the guest"
            )
        domid = self._next_domid
        self._next_domid += 1
        domain = Domain(domid, vm, self.clock)
        self.domains[domid] = domain
        return domain

    def destroy_domain(self, domid):
        domain = self.domains.pop(domid, None)
        if domain is None:
            raise HypervisorError("no domain %d" % domid)
        domain.destroy()
