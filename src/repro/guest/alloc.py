"""Physical-frame and kernel-region allocators for the simulated guests."""

from repro.errors import AllocationError
from repro.guest.memory import PAGE_SIZE


class FrameAllocator:
    """Hands out physical frames from a contiguous range, lowest first."""

    def __init__(self, first_frame, frame_count):
        self.first_frame = first_frame
        self.frame_count = frame_count
        self._next = first_frame
        self._free = []

    @property
    def limit(self):
        return self.first_frame + self.frame_count

    def allocate(self, count=1):
        """Allocate ``count`` frames (not necessarily contiguous)."""
        frames = []
        for _ in range(count):
            if self._free:
                frames.append(self._free.pop())
            elif self._next < self.limit:
                frames.append(self._next)
                self._next += 1
            else:
                raise AllocationError(
                    "frame allocator exhausted (%d frames)" % self.frame_count
                )
        return frames

    def allocate_one(self):
        return self.allocate(1)[0]

    def release(self, frames):
        for pfn in frames:
            if not (self.first_frame <= pfn < self.limit):
                raise AllocationError("frame %d not owned by this allocator" % pfn)
            self._free.append(pfn)

    def frames_in_use(self):
        return (self._next - self.first_frame) - len(self._free)

    def state_dict(self):
        return {"next": self._next, "free": list(self._free)}

    def load_state_dict(self, state):
        self._next = state["next"]
        self._free = list(state["free"])


class KernelBumpAllocator:
    """Bump allocator over the kernel's reserved physical region.

    Kernel objects are permanent in these simulations (tasks are recycled
    through the slab cache, not here), so a bump pointer suffices.
    """

    def __init__(self, base_paddr, size_bytes):
        self.base = base_paddr
        self.size = size_bytes
        self._cursor = base_paddr

    def allocate(self, size, align=8):
        cursor = (self._cursor + align - 1) // align * align
        if cursor + size > self.base + self.size:
            raise AllocationError(
                "kernel region exhausted (%d bytes)" % self.size
            )
        self._cursor = cursor + size
        return cursor

    def allocate_pages(self, count):
        """Allocate ``count`` page-aligned pages; returns the base paddr."""
        return self.allocate(count * PAGE_SIZE, align=PAGE_SIZE)

    def bytes_used(self):
        return self._cursor - self.base

    def state_dict(self):
        return {"cursor": self._cursor}

    def load_state_dict(self, state):
        self._cursor = state["cursor"]
