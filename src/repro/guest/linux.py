"""Simulated Linux guest.

Boots a kernel object graph into the kernel region of physical memory:

* ``init_task`` and a circular doubly-linked task list,
* a 64-bucket pid hash (second process view, for ``linux_psxview``),
* a slab cache dedicated to ``task_struct`` (third view: ghost records of
  unlinked/exited tasks remain scannable, as Volatility's ``psscan`` relies
  on),
* the system-call table (integrity-scanned by a Detector module),
* a linked list of loaded kernel modules,
* the CRIMES canary directory: ``(pid, table_va)`` records pointing at each
  protected process's in-guest canary table.

All of it is real bytes: introspection walks pointers exactly as LibVMI
walks a live Xen domain's memory.
"""

import struct

from repro.errors import GuestFault
from repro.guest.heap import CanaryHeap
from repro.guest.layout import StructDef
from repro.guest.memory import PAGE_SIZE
from repro.guest.pagetable import kernel_pa, kernel_va
from repro.guest.process import (
    CANARY_TABLE_BASE,
    CODE_BASE,
    HEAP_BASE,
    STACK_TOP,
    UserProcess,
)
from repro.guest.stack import StackGuard
from repro.guest.vm import GuestVM

TASK_MAGIC = 0x5441534B        # 'TASK'
MODULE_MAGIC = 0x4C444F4D      # 'MODL'
KMEM_MAGIC = 0x4D454D4B        # 'KMEM'
DIRECTORY_MAGIC = 0x52494443   # 'CDIR'

#: task_struct.state values (subset of Linux's).
TASK_RUNNING = 0
TASK_INTERRUPTIBLE = 1
TASK_ZOMBIE = 4
TASK_DEAD = 64

#: task_struct.flags bits.
FLAG_SLAB_IN_USE = 0x1
FLAG_KERNEL_THREAD = 0x2

#: Base of the (fictional) kernel text segment; syscall entries point here.
KERNEL_TEXT_BASE = 0xFFFF_FFFF_8100_0000

SYSCALL_COUNT = 64
IDT_VECTORS = 32
SOCKET_MAGIC = 0x4B434F53  # 'SOCK'

TASK_STRUCT = StructDef(
    "task_struct",
    [
        ("magic", "u32"),
        ("pid", "u32"),
        ("uid", "u32"),
        ("state", "u32"),
        ("flags", "u32"),
        ("pad", "u32"),
        ("start_time", "u64"),
        ("tasks_next", "u64"),
        ("tasks_prev", "u64"),
        ("pid_chain", "u64"),
        ("mm", "u64"),
        ("comm", ("bytes", 16)),
    ],
)

MM_STRUCT = StructDef(
    "mm_struct",
    [
        ("magic", "u32"),
        ("vma_count", "u32"),
        ("vma_array", "u64"),
    ],
)

VM_AREA = StructDef(
    "vm_area",
    [
        ("start", "u64"),
        ("end", "u64"),
        ("flags", "u32"),
        ("pad", "u32"),
        ("name", ("bytes", 32)),
    ],
)

MODULE = StructDef(
    "module",
    [
        ("magic", "u32"),
        ("pad", "u32"),
        ("next", "u64"),
        ("base", "u64"),
        ("size", "u64"),
        ("name", ("bytes", 56)),
    ],
)

KMEM_CACHE = StructDef(
    "kmem_cache",
    [
        ("magic", "u32"),
        ("slot_size", "u32"),
        ("slot_count", "u32"),
        ("pad", "u32"),
        ("base", "u64"),
    ],
)

DIRECTORY_HEADER = StructDef(
    "canary_directory_header",
    [
        ("magic", "u32"),
        ("count", "u32"),
    ],
)

FILE_MAGIC = 0x454C4946  # 'FILE'

FILE_OBJECT = StructDef(
    "file_object",
    [
        ("magic", "u32"),
        ("pid", "u32"),
        ("next", "u64"),
        ("path", ("bytes", 112)),
    ],
)

SOCKET = StructDef(
    "socket",
    [
        ("magic", "u32"),
        ("pid", "u32"),
        ("local_ip", ("bytes", 4)),
        ("remote_ip", ("bytes", 4)),
        ("local_port", "u16"),
        ("remote_port", "u16"),
        ("state", "u32"),
        ("next", "u64"),
    ],
)

DIRECTORY_ENTRY = StructDef(
    "canary_directory_entry",
    [
        ("pid", "u32"),
        ("pad", "u32"),
        ("table_va", "u64"),
    ],
)

MM_MAGIC = 0x5F5F4D4D  # 'MM__'

_TASK_SLOT_SIZE = 128
_DEFAULT_TASK_SLOTS = 512
_DIRECTORY_CAPACITY = 120


class LinuxGuest(GuestVM):
    """A bootable simulated Linux VM."""

    os_name = "linux"
    kernel_version = "4.8.0-crimes"

    def __init__(self, name="linux-vm", memory_bytes=32 * 1024 * 1024, clock=None,
                 seed=0, task_slots=_DEFAULT_TASK_SLOTS, **kwargs):
        super().__init__(name, memory_bytes, clock=clock, seed=seed, **kwargs)
        self.processes = {}
        self._slab_free = list(range(task_slots))
        self._slab_slots = task_slots
        self._task_slot_of_pid = {}
        self._boot(task_slots)

    # -- boot -----------------------------------------------------------------

    def _boot(self, task_slots):
        memory = self.memory

        # Slab cache for task_struct.
        slab_bytes = task_slots * _TASK_SLOT_SIZE
        self._slab_base = self.kalloc.allocate_pages(
            (slab_bytes + PAGE_SIZE - 1) // PAGE_SIZE
        )
        cache_pa = self.kalloc.allocate(KMEM_CACHE.size)
        KMEM_CACHE.write(
            memory,
            cache_pa,
            {
                "magic": KMEM_MAGIC,
                "slot_size": _TASK_SLOT_SIZE,
                "slot_count": task_slots,
                "pad": 0,
                "base": kernel_va(self._slab_base),
            },
        )
        self.symbols.define("kmem_cache_task", kernel_va(cache_pa))

        # System-call table.
        syscall_pa = self.kalloc.allocate(SYSCALL_COUNT * 8, align=PAGE_SIZE)
        memory.write(
            syscall_pa,
            b"".join(
                struct.pack("<Q", KERNEL_TEXT_BASE + index * 0x100)
                for index in range(SYSCALL_COUNT)
            ),
        )
        self.symbols.define("sys_call_table", kernel_va(syscall_pa))

        # Interrupt descriptor table (handler pointers only).
        idt_pa = self.kalloc.allocate(IDT_VECTORS * 8, align=64)
        memory.write(
            idt_pa,
            b"".join(
                struct.pack("<Q", KERNEL_TEXT_BASE + 0x20000 + vector * 0x40)
                for vector in range(IDT_VECTORS)
            ),
        )
        self.symbols.define("idt_table", kernel_va(idt_pa))

        # TCP socket list head (u64 variable holding the first socket VA).
        sockets_pa = self.kalloc.allocate(8, align=8)
        memory.write(sockets_pa, struct.pack("<Q", 0))
        self.symbols.define("tcp_sockets", kernel_va(sockets_pa))

        # Global open-file chain (u64 head variable).
        files_pa = self.kalloc.allocate(8, align=8)
        memory.write(files_pa, struct.pack("<Q", 0))
        self.symbols.define("file_table", kernel_va(files_pa))

        # Pid hash: 64 buckets of task-struct VAs.
        self._pid_hash_buckets = 64
        pid_hash_pa = self.kalloc.allocate(self._pid_hash_buckets * 8, align=64)
        memory.write(pid_hash_pa, b"\x00" * (self._pid_hash_buckets * 8))
        self.symbols.define("pid_hash", kernel_va(pid_hash_pa))

        # Module list head (a u64 kernel variable holding the first module VA).
        modules_pa = self.kalloc.allocate(8, align=8)
        memory.write(modules_pa, struct.pack("<Q", 0))
        self.symbols.define("modules", kernel_va(modules_pa))

        # CRIMES canary directory.
        directory_pa = self.kalloc.allocate(
            DIRECTORY_HEADER.size + _DIRECTORY_CAPACITY * DIRECTORY_ENTRY.size,
            align=64,
        )
        DIRECTORY_HEADER.write(
            memory, directory_pa, {"magic": DIRECTORY_MAGIC, "count": 0}
        )
        self._directory_pa = directory_pa
        self.symbols.define("crimes_canary_directory", kernel_va(directory_pa))

        # init_task (pid 0, the circular list head).
        init_pa = self._slab_alloc()
        init_va = kernel_va(init_pa)
        TASK_STRUCT.write(
            memory,
            init_pa,
            {
                "magic": TASK_MAGIC,
                "pid": 0,
                "uid": 0,
                "state": TASK_RUNNING,
                "flags": FLAG_SLAB_IN_USE | FLAG_KERNEL_THREAD,
                "pad": 0,
                "start_time": 0,
                "tasks_next": init_va,
                "tasks_prev": init_va,
                "pid_chain": 0,
                "mm": 0,
                "comm": b"swapper/0",
            },
        )
        self._init_task_va = init_va
        self._task_slot_of_pid[0] = init_pa
        self.symbols.define("init_task", init_va)

        for module_name, size in (("ext4", 0x9C000), ("e1000", 0x28000),
                                  ("crimes_guest", 0x4000)):
            self.load_module(module_name, size)

    # -- slab -------------------------------------------------------------------

    def _slab_alloc(self):
        if not self._slab_free:
            raise GuestFault("task_struct slab exhausted")
        slot = self._slab_free.pop(0)
        return self._slab_base + slot * _TASK_SLOT_SIZE

    def _slab_release(self, task_pa):
        slot = (task_pa - self._slab_base) // _TASK_SLOT_SIZE
        self._slab_free.append(slot)

    def slab_range(self):
        """Physical byte range of the task slab (for psscan-style sweeps)."""
        return self._slab_base, self._slab_base + self._slab_slots * _TASK_SLOT_SIZE

    # -- task list maintenance -----------------------------------------------------

    def _task_pa(self, pid):
        pa = self._task_slot_of_pid.get(pid)
        if pa is None:
            raise GuestFault("no task with pid %d" % pid)
        return pa

    def _link_task(self, task_pa):
        """Insert at the tail of the circular task list (before init_task)."""
        memory = self.memory
        task_va = kernel_va(task_pa)
        init_pa = kernel_pa(self._init_task_va)
        tail_va = TASK_STRUCT.read_field(memory, init_pa, "tasks_prev")
        tail_pa = kernel_pa(tail_va)
        TASK_STRUCT.write_field(memory, tail_pa, "tasks_next", task_va)
        TASK_STRUCT.write_field(memory, task_pa, "tasks_prev", tail_va)
        TASK_STRUCT.write_field(memory, task_pa, "tasks_next", self._init_task_va)
        TASK_STRUCT.write_field(memory, init_pa, "tasks_prev", task_va)

    def _unlink_task(self, task_pa):
        memory = self.memory
        next_va = TASK_STRUCT.read_field(memory, task_pa, "tasks_next")
        prev_va = TASK_STRUCT.read_field(memory, task_pa, "tasks_prev")
        if next_va == 0 and prev_va == 0:
            return  # already unlinked
        TASK_STRUCT.write_field(memory, kernel_pa(prev_va), "tasks_next", next_va)
        TASK_STRUCT.write_field(memory, kernel_pa(next_va), "tasks_prev", prev_va)
        TASK_STRUCT.write_field(memory, task_pa, "tasks_next", 0)
        TASK_STRUCT.write_field(memory, task_pa, "tasks_prev", 0)

    def _pid_hash_insert(self, task_pa, pid):
        memory = self.memory
        bucket_pa = kernel_pa(self.symbols.lookup("pid_hash")) + (
            pid % self._pid_hash_buckets
        ) * 8
        head = struct.unpack("<Q", memory.read(bucket_pa, 8))[0]
        TASK_STRUCT.write_field(memory, task_pa, "pid_chain", head)
        memory.write(bucket_pa, struct.pack("<Q", kernel_va(task_pa)))

    def _pid_hash_remove(self, task_pa, pid):
        memory = self.memory
        target_va = kernel_va(task_pa)
        bucket_pa = kernel_pa(self.symbols.lookup("pid_hash")) + (
            pid % self._pid_hash_buckets
        ) * 8
        current = struct.unpack("<Q", memory.read(bucket_pa, 8))[0]
        previous_pa = None
        while current:
            current_pa = kernel_pa(current)
            following = TASK_STRUCT.read_field(memory, current_pa, "pid_chain")
            if current == target_va:
                if previous_pa is None:
                    memory.write(bucket_pa, struct.pack("<Q", following))
                else:
                    TASK_STRUCT.write_field(
                        memory, previous_pa, "pid_chain", following
                    )
                TASK_STRUCT.write_field(memory, current_pa, "pid_chain", 0)
                return
            previous_pa = current_pa
            current = following

    # -- process lifecycle ----------------------------------------------------------

    def create_process(self, name, uid=1000, heap_pages=16, code_pages=2,
                       stack_pages=4, canary_capacity=2048,
                       canaries_enabled=True, kernel_thread=False):
        """Spawn a user process: task_struct + address space + canary heap."""
        pid = self.allocate_pid()
        task_pa = self._slab_alloc()
        mm_va = 0
        process = None

        if not kernel_thread:
            process = UserProcess(self, pid, name, uid=uid)
            process.map_region("code", CODE_BASE, code_pages)
            process.map_region("heap", HEAP_BASE, heap_pages)
            process.map_region(
                "stack", STACK_TOP - stack_pages * PAGE_SIZE, stack_pages
            )
            from repro.guest.heap import CANARY_ENTRY, CANARY_TABLE_HEADER

            table_bytes = (
                CANARY_TABLE_HEADER.size + canary_capacity * CANARY_ENTRY.size
            )
            table_pages = (table_bytes + PAGE_SIZE - 1) // PAGE_SIZE
            process.map_region("canary_table", CANARY_TABLE_BASE, table_pages)
            process.heap = CanaryHeap(
                process,
                HEAP_BASE,
                heap_pages * PAGE_SIZE,
                CANARY_TABLE_BASE,
                canary_capacity,
                canary_value=struct.unpack("<Q", self.rng.randbytes(8))[0],
                canaries_enabled=canaries_enabled,
            )
            if canaries_enabled:
                process.stack_guard = StackGuard(
                    process,
                    stack_base=STACK_TOP - stack_pages * PAGE_SIZE,
                    stack_top=STACK_TOP,
                    registry=process.heap,
                )
            mm_va = self._write_mm_struct(process)
            self.processes[pid] = process
            if canaries_enabled:
                self._directory_add(pid, CANARY_TABLE_BASE)

        TASK_STRUCT.write(
            self.memory,
            task_pa,
            {
                "magic": TASK_MAGIC,
                "pid": pid,
                "uid": uid,
                "state": TASK_RUNNING,
                "flags": FLAG_SLAB_IN_USE
                | (FLAG_KERNEL_THREAD if kernel_thread else 0),
                "pad": 0,
                "start_time": self.now_us(),
                "tasks_next": 0,
                "tasks_prev": 0,
                "pid_chain": 0,
                "mm": mm_va,
                "comm": name.encode("utf-8"),
            },
        )
        self._task_slot_of_pid[pid] = task_pa
        self._link_task(task_pa)
        self._pid_hash_insert(task_pa, pid)
        return process if process is not None else pid

    def _write_mm_struct(self, process):
        vma_entries = []
        for region, (base, pages) in sorted(process.regions.items(),
                                            key=lambda kv: kv[1][0]):
            vma_entries.append(
                {
                    "start": base,
                    "end": base + pages * PAGE_SIZE,
                    "flags": 0x7,
                    "pad": 0,
                    "name": ("[%s]" % region).encode("utf-8"),
                }
            )
        vma_pa = self.kalloc.allocate(len(vma_entries) * VM_AREA.size, align=64)
        for index, entry in enumerate(vma_entries):
            VM_AREA.write(self.memory, vma_pa + index * VM_AREA.size, entry)
        mm_pa = self.kalloc.allocate(MM_STRUCT.size, align=64)
        MM_STRUCT.write(
            self.memory,
            mm_pa,
            {
                "magic": MM_MAGIC,
                "vma_count": len(vma_entries),
                "vma_array": kernel_va(vma_pa),
            },
        )
        return kernel_va(mm_pa)

    def exit_process(self, pid):
        """Normal exit: unlink everywhere, release frames, leave a slab ghost."""
        task_pa = self._task_pa(pid)
        TASK_STRUCT.write_field(self.memory, task_pa, "state", TASK_DEAD)
        flags = TASK_STRUCT.read_field(self.memory, task_pa, "flags")
        TASK_STRUCT.write_field(
            self.memory, task_pa, "flags", flags & ~FLAG_SLAB_IN_USE
        )
        self._unlink_task(task_pa)
        self._pid_hash_remove(task_pa, pid)
        self._slab_release(task_pa)
        self._task_slot_of_pid.pop(pid, None)
        process = self.processes.pop(pid, None)
        if process is not None:
            if process.heap is not None and process.heap.canaries_enabled:
                self._directory_remove(pid)
            process.release_frames()

    def hide_process(self, pid):
        """Rootkit-style hiding: unlink from the task list *only*.

        The task remains in the pid hash and the slab, which is exactly the
        inconsistency ``linux_psxview`` detects.
        """
        self._unlink_task(self._task_pa(pid))

    def rename_process(self, pid, new_name):
        TASK_STRUCT.write_field(
            self.memory, self._task_pa(pid), "comm", new_name.encode("utf-8")
        )
        process = self.processes.get(pid)
        if process is not None:
            process.name = new_name

    def task_va_of_pid(self, pid):
        return kernel_va(self._task_pa(pid))

    # -- kernel attack surface (used by attack programs) ----------------------------

    def hijack_syscall(self, index, target_va):
        """Overwrite a syscall-table slot (system-call table hijacking)."""
        if not (0 <= index < SYSCALL_COUNT):
            raise GuestFault("syscall index %d out of range" % index)
        table_pa = kernel_pa(self.symbols.lookup("sys_call_table"))
        self.memory.write(table_pa + index * 8, struct.pack("<Q", target_va))

    def hijack_idt(self, vector, target_va):
        """Overwrite an interrupt-descriptor slot (IDT hooking)."""
        if not (0 <= vector < IDT_VECTORS):
            raise GuestFault("IDT vector %d out of range" % vector)
        table_pa = kernel_pa(self.symbols.lookup("idt_table"))
        self.memory.write(table_pa + vector * 8, struct.pack("<Q", target_va))

    def open_socket(self, pid, local, remote, state=None):
        """Create a kernel socket object; ``local``/``remote`` are
        ``(ip, port)``. Returns the socket's kernel VA."""
        from repro.guest.net import TCP_ESTABLISHED, ip_to_bytes

        socket_pa = self.kalloc.allocate(SOCKET.size, align=64)
        head_pa = kernel_pa(self.symbols.lookup("tcp_sockets"))
        head = struct.unpack("<Q", self.memory.read(head_pa, 8))[0]
        SOCKET.write(
            self.memory,
            socket_pa,
            {
                "magic": SOCKET_MAGIC,
                "pid": pid,
                "local_ip": ip_to_bytes(local[0]),
                "remote_ip": ip_to_bytes(remote[0]),
                "local_port": local[1],
                "remote_port": remote[1],
                "state": state if state is not None else TCP_ESTABLISHED,
                "next": head,
            },
        )
        self.memory.write(head_pa, struct.pack("<Q", kernel_va(socket_pa)))
        return kernel_va(socket_pa)

    def set_socket_state(self, socket_va, state):
        SOCKET.write_field(self.memory, kernel_pa(socket_va), "state", state)

    def open_file(self, pid, path):
        """Create a kernel file object owned by ``pid``; returns its VA."""
        file_pa = self.kalloc.allocate(FILE_OBJECT.size, align=64)
        head_pa = kernel_pa(self.symbols.lookup("file_table"))
        head = struct.unpack("<Q", self.memory.read(head_pa, 8))[0]
        FILE_OBJECT.write(
            self.memory,
            file_pa,
            {
                "magic": FILE_MAGIC,
                "pid": pid,
                "next": head,
                "path": path.encode("utf-8"),
            },
        )
        self.memory.write(head_pa, struct.pack("<Q", kernel_va(file_pa)))
        return kernel_va(file_pa)

    def close_file(self, file_va):
        """Unlink a file object from the global chain."""
        target_pa = kernel_pa(file_va)
        head_pa = kernel_pa(self.symbols.lookup("file_table"))
        current = struct.unpack("<Q", self.memory.read(head_pa, 8))[0]
        previous_pa = None
        while current:
            current_pa = kernel_pa(current)
            following = FILE_OBJECT.read_field(self.memory, current_pa, "next")
            if current == file_va:
                if previous_pa is None:
                    self.memory.write(head_pa, struct.pack("<Q", following))
                else:
                    FILE_OBJECT.write_field(
                        self.memory, previous_pa, "next", following
                    )
                return
            previous_pa = current_pa
            current = following
        raise GuestFault("file object 0x%x not in file table" % file_va)

    def load_module(self, name, size_bytes):
        """Append a kernel module to the module list."""
        module_pa = self.kalloc.allocate(MODULE.size, align=64)
        head_pa = kernel_pa(self.symbols.lookup("modules"))
        head = struct.unpack("<Q", self.memory.read(head_pa, 8))[0]
        MODULE.write(
            self.memory,
            module_pa,
            {
                "magic": MODULE_MAGIC,
                "pad": 0,
                "next": head,
                "base": KERNEL_TEXT_BASE + 0x40_0000 + module_pa,
                "size": size_bytes,
                "name": name.encode("utf-8"),
            },
        )
        self.memory.write(head_pa, struct.pack("<Q", kernel_va(module_pa)))

    # -- canary directory ---------------------------------------------------------------

    def _directory_entries(self):
        header = DIRECTORY_HEADER.read(self.memory, self._directory_pa)
        entries = []
        for index in range(header["count"]):
            entry_pa = (
                self._directory_pa
                + DIRECTORY_HEADER.size
                + index * DIRECTORY_ENTRY.size
            )
            entries.append(DIRECTORY_ENTRY.read(self.memory, entry_pa))
        return entries

    def _directory_write(self, entries):
        if len(entries) > _DIRECTORY_CAPACITY:
            raise GuestFault("canary directory full")
        DIRECTORY_HEADER.write(
            self.memory,
            self._directory_pa,
            {"magic": DIRECTORY_MAGIC, "count": len(entries)},
        )
        for index, entry in enumerate(entries):
            DIRECTORY_ENTRY.write(
                self.memory,
                self._directory_pa
                + DIRECTORY_HEADER.size
                + index * DIRECTORY_ENTRY.size,
                entry,
            )

    def _directory_add(self, pid, table_va):
        entries = self._directory_entries()
        entries.append({"pid": pid, "pad": 0, "table_va": table_va})
        self._directory_write(entries)

    def _directory_remove(self, pid):
        entries = [e for e in self._directory_entries() if e["pid"] != pid]
        self._directory_write(entries)

    # -- snapshot -----------------------------------------------------------------------

    def state_dict(self):
        state = super().state_dict()
        state["linux"] = {
            "slab_free": list(self._slab_free),
            "task_slot_of_pid": dict(self._task_slot_of_pid),
            "processes": {
                pid: process.state_dict() for pid, process in self.processes.items()
            },
        }
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        linux = state["linux"]
        self._slab_free = list(linux["slab_free"])
        self._task_slot_of_pid = dict(linux["task_slot_of_pid"])
        surviving = {}
        for pid, process_state in linux["processes"].items():
            process = self.processes.get(pid)
            if process is None:
                process = UserProcess(self, pid, process_state["name"])
            if "heap" in process_state and process.heap is None:
                process.heap = CanaryHeap.from_state(process, process_state["heap"])
            if "stack_guard" in process_state and process.stack_guard is None:
                base, pages = process_state["regions"]["stack"]
                process.stack_guard = StackGuard(
                    process, base, base + pages * PAGE_SIZE, process.heap
                )
            process.load_state_dict(process_state)
            surviving[pid] = process
        self.processes = surviving
