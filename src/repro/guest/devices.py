"""Virtual devices: NIC and block disk.

Devices emit *outputs* — the externally visible effects CRIMES must hold
back during speculative execution. A device writes into whatever sink is
installed; the hypervisor installs either a pass-through sink (Best Effort
Safety) or a buffering sink (Synchronous Safety, ``repro.netbuf``).
"""


class Packet:
    """An outgoing network packet."""

    __slots__ = ("src", "dst", "payload", "flags", "conn_id", "sent_at")

    def __init__(self, src, dst, payload=b"", flags=(), conn_id=None, sent_at=None):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.flags = tuple(flags)
        self.conn_id = conn_id
        self.sent_at = sent_at

    def __repr__(self):
        return "Packet(%s -> %s, %d bytes, flags=%s)" % (
            self.src,
            self.dst,
            len(self.payload),
            "|".join(self.flags) or "-",
        )


class DiskWrite:
    """An outgoing block-device write."""

    __slots__ = ("block", "data", "issued_at")

    def __init__(self, block, data, issued_at=None):
        self.block = block
        self.data = data
        self.issued_at = issued_at

    def __repr__(self):
        return "DiskWrite(block=%d, %d bytes)" % (self.block, len(self.data))


class OutputSink:
    """Terminal sink: records everything that actually left the VM.

    This models "the outside world". Benchmarks and tests inspect
    ``packets`` / ``disk_writes`` to check what escaped and when.
    """

    def __init__(self, clock=None):
        self._clock = clock
        self.packets = []
        self.disk_writes = []

    def _now(self):
        return self._clock.now if self._clock is not None else None

    def emit_packet(self, packet):
        packet.sent_at = self._now()
        self.packets.append(packet)

    def emit_disk_write(self, write):
        write.issued_at = self._now()
        self.disk_writes.append(write)


class VirtualNic:
    """Guest-side network interface; counts traffic and forwards to the sink."""

    def __init__(self, sink):
        self.sink = sink
        self.tx_packets = 0
        self.tx_bytes = 0

    def send(self, packet):
        self.tx_packets += 1
        self.tx_bytes += len(packet.payload)
        self.sink.emit_packet(packet)

    def state_dict(self):
        return {"tx_packets": self.tx_packets, "tx_bytes": self.tx_bytes}

    def load_state_dict(self, state):
        self.tx_packets = state["tx_packets"]
        self.tx_bytes = state["tx_bytes"]


class VirtualDisk:
    """Guest-side block device.

    Writes update the guest-local image (if one is attached) *and* emit
    an external output — the externally visible effect CRIMES buffers.
    The image participates in state_dict, so checkpoints snapshot the
    disk and rollback reverts tampering (the §3.1 extension).
    """

    def __init__(self, sink, image=None):
        self.sink = sink
        self.image = image
        self.writes = 0

    def attach_image(self, image):
        self.image = image

    def write(self, block, data):
        self.writes += 1
        if self.image is not None:
            self.image.write_block(block, data)
        self.sink.emit_disk_write(DiskWrite(block, data))

    def read(self, block):
        if self.image is None:
            raise RuntimeError("no disk image attached")
        return self.image.read_block(block)

    def state_dict(self):
        state = {"writes": self.writes}
        if self.image is not None:
            state["image"] = self.image.state_dict()
        return state

    def load_state_dict(self, state):
        self.writes = state["writes"]
        if self.image is not None and "image" in state:
            self.image.load_state_dict(state["image"])
