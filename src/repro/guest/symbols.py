"""System.map-style symbol tables.

A real introspector locates kernel structures through the guest's
``System.map`` (or Windows PDB symbols). The simulated guests publish the
virtual addresses of their root objects the same way; VMI resolves names
through this table and never receives Python references into the guest.
"""

from repro.errors import SymbolNotFound


class SymbolMap:
    """An immutable-feeling name -> virtual address table."""

    def __init__(self, os_name, kernel_version):
        self.os_name = os_name
        self.kernel_version = kernel_version
        self._symbols = {}

    def define(self, name, vaddr):
        self._symbols[name] = vaddr

    def lookup(self, name):
        try:
            return self._symbols[name]
        except KeyError:
            raise SymbolNotFound(name) from None

    def __contains__(self, name):
        return name in self._symbols

    def names(self):
        return sorted(self._symbols)

    def as_system_map(self):
        """Render the table in classic ``System.map`` text format."""
        lines = [
            "%016x D %s" % (vaddr, name)
            for name, vaddr in sorted(self._symbols.items(), key=lambda kv: kv[1])
        ]
        return "\n".join(lines) + "\n"

    def state_dict(self):
        return {
            "os_name": self.os_name,
            "kernel_version": self.kernel_version,
            "symbols": dict(self._symbols),
        }

    def load_state_dict(self, state):
        self.os_name = state["os_name"]
        self.kernel_version = state["kernel_version"]
        self._symbols = dict(state["symbols"])
