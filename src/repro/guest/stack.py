"""Stack-frame canaries (StackGuard-style tripwires, §3.2).

The paper's guest-aided modules "place canaries after objects in the
stack or heap". :class:`StackGuard` manages a descending stack of frames,
planting a canary at the top of each frame's local-variable area — the
classic StackGuard position between the locals and the saved return
address. Frame canaries are recorded in the *same* hypervisor-readable
table as heap canaries, so the existing
:class:`~repro.detectors.canary.CanaryScanModule` covers stack smashes
with no changes.

Unlike compiler-inserted stack protection, which only checks the canary
in the function epilogue, the hypervisor scan catches the smash at the
next epoch boundary even if the attacked function never returns.
"""

from repro.errors import AllocationError, GuestFault
from repro.guest.heap import CANARY_SIZE

_FRAME_ALIGNMENT = 16


class StackGuard:
    """Descending-stack frame manager with per-frame canaries."""

    def __init__(self, process, stack_base, stack_top, registry):
        self.process = process
        self.stack_base = stack_base    # lowest valid address
        self.stack_top = stack_top      # initial stack pointer
        self.registry = registry        # the process's CanaryHeap table
        self._sp = stack_top
        self._frames = []               # (locals_base, locals_size)

    @property
    def stack_pointer(self):
        return self._sp

    @property
    def depth(self):
        return len(self._frames)

    def push_frame(self, locals_size):
        """Enter a function: reserve locals + canary; returns locals base.

        Layout (descending): ... | canary | locals | <- new sp
        The canary sits immediately *above* the locals, where a linear
        overflow of a local buffer hits it before the return address.
        """
        if locals_size <= 0:
            raise AllocationError("frame size must be positive")
        footprint = locals_size + CANARY_SIZE
        footprint = (footprint + _FRAME_ALIGNMENT - 1) // _FRAME_ALIGNMENT \
            * _FRAME_ALIGNMENT
        new_sp = self._sp - footprint
        if new_sp < self.stack_base:
            raise AllocationError(
                "stack overflow: frame of %d bytes does not fit" % locals_size
            )
        locals_base = new_sp
        self.registry.register_canary(locals_base, locals_size)
        self._sp = new_sp
        self._frames.append((locals_base, locals_size, footprint))
        return locals_base

    def pop_frame(self):
        """Leave a function: epilogue canary check, then release."""
        if not self._frames:
            raise GuestFault("pop_frame on an empty stack")
        locals_base, locals_size, footprint = self._frames.pop()
        self._sp += footprint
        try:
            self.registry.unregister_canary(locals_base, locals_size)
        except GuestFault:
            raise GuestFault(
                "stack smashing detected in frame at 0x%x" % locals_base
            ) from None

    def abandon_frame(self):
        """Pop bookkeeping without the epilogue check (exploited path).

        Models control flow that never executes the instrumented
        epilogue — the case where only the hypervisor scan catches the
        smash. The canary stays registered (and corrupted) in the table.
        """
        if not self._frames:
            raise GuestFault("abandon_frame on an empty stack")
        _base, _size, footprint = self._frames.pop()
        self._sp += footprint

    def state_dict(self):
        return {"sp": self._sp, "frames": list(self._frames)}

    def load_state_dict(self, state):
        self._sp = state["sp"]
        self._frames = [tuple(frame) for frame in state["frames"]]
