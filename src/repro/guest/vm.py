"""Base guest virtual machine.

A :class:`GuestVM` owns simulated physical RAM, a symbol map, virtual CPU
state, devices, and the allocators that carve the physical address space:

* frame 0             — reserved (null page, never handed out)
* frames 1 .. K       — kernel region (object graph, slabs, page tables)
* frames K .. end     — user frames (process code/stack/heap pages)

Subclasses (:class:`~repro.guest.linux.LinuxGuest`,
:class:`~repro.guest.windows.WindowsGuest`) build an OS-specific kernel
object graph inside the kernel region at boot.
"""

import copy

from repro.errors import DomainStateError
from repro.guest.alloc import FrameAllocator, KernelBumpAllocator
from repro.guest.devices import OutputSink, VirtualDisk, VirtualNic
from repro.guest.disk import BlockStore
from repro.guest.memory import PAGE_SIZE, PhysicalMemory
from repro.guest.symbols import SymbolMap
from repro.sim.clock import VirtualClock
from repro.sim.rng import SeededStream

#: Default share of RAM reserved for the kernel object graph.
DEFAULT_KERNEL_FRACTION = 0.25

_CPU_REGISTERS = ("rip", "rsp", "rbp", "rax", "rbx", "rcx", "rdx", "cr3")


class GuestSnapshot:
    """A full copy of guest state: RAM image, CPU, Python-side bookkeeping."""

    __slots__ = ("memory_image", "state", "taken_at")

    def __init__(self, memory_image, state, taken_at):
        self.memory_image = memory_image
        self.state = state
        self.taken_at = taken_at


class GuestVM:
    """Base simulated guest (OS-agnostic plumbing)."""

    os_name = "generic"
    kernel_version = "0.0"

    def __init__(self, name, memory_bytes, clock=None, seed=0,
                 kernel_fraction=DEFAULT_KERNEL_FRACTION, vcpus=1,
                 disk_blocks=1024):
        self.name = name
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = SeededStream(seed, "guest/%s" % name)
        self.vcpus = vcpus
        self.memory = PhysicalMemory(memory_bytes)

        kernel_frames = max(4, int(self.memory.frame_count * kernel_fraction))
        self.kernel_frames = kernel_frames
        # Frame 0 stays unmapped so that a null pointer is always a fault.
        self.kalloc = KernelBumpAllocator(PAGE_SIZE, (kernel_frames - 1) * PAGE_SIZE)
        self.user_frames = FrameAllocator(
            kernel_frames, self.memory.frame_count - kernel_frames
        )

        self.symbols = SymbolMap(self.os_name, self.kernel_version)
        self.cpu = {register: 0 for register in _CPU_REGISTERS}

        self.output_sink = OutputSink(self.clock)
        self.nic = VirtualNic(self.output_sink)
        self.disk = VirtualDisk(self.output_sink, image=BlockStore(disk_blocks))

        self._next_pid = 1
        self.running = True

    # -- device plumbing -------------------------------------------------

    def set_output_sink(self, sink):
        """Redirect device outputs (the hypervisor installs its buffer here)."""
        self.output_sink = sink
        self.nic.sink = sink
        self.disk.sink = sink

    # -- lifecycle --------------------------------------------------------

    def pause(self):
        if not self.running:
            raise DomainStateError("VM %s is already paused" % self.name)
        self.running = False

    def resume(self):
        if self.running:
            raise DomainStateError("VM %s is already running" % self.name)
        self.running = True

    def allocate_pid(self):
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def now_us(self):
        """Guest wall clock in microseconds (used for kernel timestamps)."""
        return int(self.clock.now * 1000)

    # -- snapshot / restore ------------------------------------------------

    def state_dict(self):
        """Plain-data snapshot of all Python-side guest state.

        Subclasses extend this; everything returned must survive
        ``copy.deepcopy`` and contain no references into live objects.
        """
        return {
            "cpu": dict(self.cpu),
            "kalloc": self.kalloc.state_dict(),
            "user_frames": self.user_frames.state_dict(),
            "nic": self.nic.state_dict(),
            "disk": self.disk.state_dict(),
            "next_pid": self._next_pid,
        }

    def load_state_dict(self, state):
        self.cpu = dict(state["cpu"])
        self.kalloc.load_state_dict(state["kalloc"])
        self.user_frames.load_state_dict(state["user_frames"])
        self.nic.load_state_dict(state["nic"])
        self.disk.load_state_dict(state["disk"])
        self._next_pid = state["next_pid"]

    def snapshot(self):
        """Full-fidelity snapshot (RAM + CPU + bookkeeping)."""
        return GuestSnapshot(
            memory_image=self.memory.snapshot_bytes(),
            state=copy.deepcopy(self.state_dict()),
            taken_at=self.clock.now,
        )

    def restore(self, snapshot):
        """Restore a snapshot taken earlier from this same VM."""
        self.memory.load_bytes(snapshot.memory_image)
        self.load_state_dict(copy.deepcopy(snapshot.state))

    def __repr__(self):
        return "%s(name=%r, ram=%dMiB)" % (
            type(self).__name__,
            self.name,
            self.memory.size // (1024 * 1024),
        )
