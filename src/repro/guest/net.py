"""Shared network-object vocabulary for the simulated guests."""

#: TCP endpoint states (subset of the real state machines).
TCP_ESTABLISHED = 1
TCP_CLOSE_WAIT = 2
TCP_LISTENING = 3
TCP_CLOSED = 4

TCP_STATE_NAMES = {
    TCP_ESTABLISHED: "ESTABLISHED",
    TCP_CLOSE_WAIT: "CLOSE_WAIT",
    TCP_LISTENING: "LISTENING",
    TCP_CLOSED: "CLOSED",
}


def ip_to_bytes(dotted):
    """'192.168.1.76' -> 4 bytes."""
    return bytes(int(part) for part in dotted.split("."))


def bytes_to_ip(raw):
    """4 bytes -> '192.168.1.76'."""
    return ".".join(str(b) for b in raw)
