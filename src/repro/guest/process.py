"""User processes inside a simulated guest.

A :class:`UserProcess` owns a sparse page table over guest physical frames
and exposes read/write through virtual addresses (splitting accesses across
page boundaries, since physical frames are not contiguous). The heap region
is managed by :class:`~repro.guest.heap.CanaryHeap`.
"""

import struct

from repro.guest.memory import PAGE_SIZE
from repro.guest.pagetable import PageTable

#: Canonical user-space layout (per-process, matching a classic ELF layout).
CODE_BASE = 0x0000_0000_0040_0000
HEAP_BASE = 0x0000_0000_1000_0000
CANARY_TABLE_BASE = 0x0000_0000_7000_0000
STACK_TOP = 0x0000_7FFF_FF00_0000


class UserProcess:
    """A guest user process: address space + heap + simple I/O helpers."""

    def __init__(self, vm, pid, name, uid=1000):
        self.vm = vm
        self.pid = pid
        self.name = name
        self.uid = uid
        self.page_table = PageTable()
        self.regions = {}  # name -> (base_va, page_count)
        self.heap = None
        self.stack_guard = None
        self.alive = True

    # -- address-space construction ---------------------------------------

    def map_region(self, region, base_va, page_count):
        """Allocate physical frames and map them at ``base_va``."""
        frames = self.vm.user_frames.allocate(page_count)
        first_vpn = base_va // PAGE_SIZE
        for index, pfn in enumerate(frames):
            self.page_table.map(first_vpn + index, pfn)
        self.regions[region] = (base_va, page_count)
        return base_va

    def region_range(self, region):
        base, pages = self.regions[region]
        return base, base + pages * PAGE_SIZE

    def release_frames(self):
        """Return all mapped frames to the VM (process teardown)."""
        frames = [pfn for _vpn, pfn in self.page_table.entries()]
        self.vm.user_frames.release(frames)
        self.page_table = PageTable()
        self.alive = False

    # -- virtual-address access --------------------------------------------

    def write(self, vaddr, data):
        """Store bytes at a virtual address (may span pages)."""
        offset = 0
        remaining = len(data)
        while remaining > 0:
            paddr = self.page_table.translate(vaddr + offset)
            room = PAGE_SIZE - (paddr % PAGE_SIZE)
            chunk = min(room, remaining)
            self.vm.memory.write(paddr, data[offset : offset + chunk])
            offset += chunk
            remaining -= chunk

    def read(self, vaddr, length):
        """Load bytes from a virtual address (may span pages)."""
        parts = []
        offset = 0
        while offset < length:
            paddr = self.page_table.translate(vaddr + offset)
            room = PAGE_SIZE - (paddr % PAGE_SIZE)
            chunk = min(room, length - offset)
            parts.append(self.vm.memory.read(paddr, chunk))
            offset += chunk
        return b"".join(parts)

    def write_u64(self, vaddr, value):
        self.write(vaddr, struct.pack("<Q", value))

    def read_u64(self, vaddr):
        return struct.unpack("<Q", self.read(vaddr, 8))[0]

    # -- heap convenience ----------------------------------------------------

    def malloc(self, size):
        return self.heap.malloc(size)

    def free(self, addr):
        self.heap.free(addr)

    # -- snapshot -------------------------------------------------------------

    def state_dict(self):
        state = {
            "pid": self.pid,
            "name": self.name,
            "uid": self.uid,
            "alive": self.alive,
            "page_table": self.page_table.state_dict(),
            "regions": dict(self.regions),
        }
        if self.heap is not None:
            state["heap"] = self.heap.state_dict()
        if self.stack_guard is not None:
            state["stack_guard"] = self.stack_guard.state_dict()
        return state

    def load_state_dict(self, state):
        self.pid = state["pid"]
        self.name = state["name"]
        self.uid = state["uid"]
        self.alive = state["alive"]
        self.page_table.load_state_dict(state["page_table"])
        self.regions = dict(state["regions"])
        if self.heap is not None and "heap" in state:
            self.heap.load_state_dict(state["heap"])
        if self.stack_guard is not None and "stack_guard" in state:
            self.stack_guard.load_state_dict(state["stack_guard"])

    def __repr__(self):
        return "UserProcess(pid=%d, name=%r)" % (self.pid, self.name)
