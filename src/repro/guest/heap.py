"""Canary-placing heap allocator (the paper's malloc wrapper).

CRIMES's guest-aided buffer-overflow module relies on a malloc wrapper that
(a) places an 8-byte random canary immediately after every allocated object
and (b) maintains a lookup table of canary locations *in guest memory* that
the hypervisor-level scanner can read (§4.2).

This allocator does exactly that: the table lives at a fixed virtual
address inside the protected process, with a header carrying the canary
value and entry count, followed by packed ``(addr, size)`` records. The
canary itself is written as real bytes after each object — an out-of-bounds
store through the ordinary write path clobbers it, leaving the evidence the
Detector looks for.
"""

import struct

from repro.errors import AllocationError, GuestFault
from repro.guest.layout import StructDef

CANARY_TABLE_MAGIC = 0x59524E43  # 'CNRY'
CANARY_SIZE = 8
_ALIGNMENT = 16

#: Tripwire kinds recorded in the table.
KIND_CANARY = 0        # live object: 8 canary bytes follow [addr, addr+size)
KIND_FREED = 1         # freed object: [addr, addr+size) is poison-filled

#: DoubleTake-style fill byte for freed objects: any deviation from it in
#: a freed region is evidence of a use-after-free write.
FREED_FILL_BYTE = 0x5A

CANARY_TABLE_HEADER = StructDef(
    "canary_table_header",
    [
        ("magic", "u32"),
        ("count", "u32"),
        ("canary", "u64"),
        ("capacity", "u32"),
        ("pad", "u32"),
    ],
)

CANARY_ENTRY = StructDef(
    "canary_entry",
    [
        ("addr", "u64"),
        ("size", "u64"),
        ("kind", "u32"),
        ("pad", "u32"),
    ],
)


class CanaryHeap:
    """Bump allocator over a process heap region, with canary bookkeeping."""

    def __init__(self, process, base_va, size_bytes, table_va, table_capacity,
                 canary_value, canaries_enabled=True):
        self.process = process
        self.base_va = base_va
        self.size = size_bytes
        self.table_va = table_va
        self.table_capacity = table_capacity
        self.canary_value = canary_value
        self.canaries_enabled = canaries_enabled
        self._cursor = base_va
        self._live = {}        # addr -> size
        self._table_index = {} # addr -> slot in the guest-memory table
        self._write_header()

    # -- guest-memory table maintenance ----------------------------------

    def _write_header(self):
        self.process.write(
            self.table_va,
            CANARY_TABLE_HEADER.encode(
                {
                    "magic": CANARY_TABLE_MAGIC,
                    "count": len(self._table_index),
                    "canary": self.canary_value,
                    "capacity": self.table_capacity,
                    "pad": 0,
                }
            ),
        )

    def _entry_va(self, index):
        return self.table_va + CANARY_TABLE_HEADER.size + index * CANARY_ENTRY.size

    def _write_entry(self, index, addr, size, kind=KIND_CANARY):
        self.process.write(
            self._entry_va(index),
            CANARY_ENTRY.encode(
                {"addr": addr, "size": size, "kind": kind, "pad": 0}
            ),
        )

    def _set_count(self, count):
        self.process.write(
            self.table_va + CANARY_TABLE_HEADER.offset_of("count"),
            struct.pack("<I", count),
        )

    # -- canary registry (shared with the stack guard) --------------------

    def register_canary(self, addr, size, kind=KIND_CANARY):
        """Record a tripwire over ``[addr, addr+size)``.

        ``KIND_CANARY`` plants 8 canary bytes after the range (used by
        :meth:`malloc` and :class:`~repro.guest.stack.StackGuard`);
        ``KIND_FREED`` records an already-poisoned freed region.
        """
        if addr in self._table_index:
            # A stale tripwire at the same address (e.g. an abandoned
            # stack frame whose slot is being reused): replace it rather
            # than corrupt the index with a duplicate.
            stale = CANARY_ENTRY.decode(
                self.process.read(
                    self._entry_va(self._table_index[addr]),
                    CANARY_ENTRY.size,
                )
            )
            self.unregister_canary(addr, stale["size"], validate=False)
        if len(self._table_index) >= self.table_capacity:
            raise AllocationError(
                "canary table full (%d entries)" % self.table_capacity
            )
        index = len(self._table_index)
        if kind == KIND_CANARY:
            self.process.write(
                addr + size, struct.pack("<Q", self.canary_value)
            )
        self._write_entry(index, addr, size, kind=kind)
        self._table_index[addr] = index
        self._set_count(len(self._table_index))

    def unregister_canary(self, addr, size, validate=True):
        """Remove a tripwire from the table, optionally validating it."""
        stored = struct.unpack(
            "<Q", self.process.read(addr + size, CANARY_SIZE)
        )[0]
        index = self._table_index.pop(addr)
        # Swap-with-last keeps the guest-memory table densely packed.
        last_index = len(self._table_index)
        if index != last_index:
            moved = CANARY_ENTRY.decode(
                self.process.read(self._entry_va(last_index), CANARY_ENTRY.size)
            )
            self._write_entry(index, moved["addr"], moved["size"],
                              kind=moved["kind"])
            self._table_index[moved["addr"]] = index
        self._set_count(len(self._table_index))
        if validate and stored != self.canary_value:
            raise GuestFault(
                "canary corruption detected at 0x%x: %016x != %016x"
                % (addr, stored, self.canary_value)
            )

    # -- allocation API ---------------------------------------------------

    def malloc(self, size):
        """Allocate ``size`` bytes; returns the object's virtual address."""
        if size <= 0:
            raise AllocationError("malloc size must be positive, got %r" % size)
        start = (self._cursor + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
        footprint = size + (CANARY_SIZE if self.canaries_enabled else 0)
        if start + footprint > self.base_va + self.size:
            raise AllocationError(
                "heap exhausted: %d-byte allocation does not fit" % size
            )
        self._cursor = start + footprint
        self._live[start] = size
        if self.canaries_enabled:
            self.register_canary(start, size)
        return start

    def free(self, addr):
        """Release an object: validate its canary, then poison it.

        The freed region is filled with :data:`FREED_FILL_BYTE` and
        re-registered as a ``KIND_FREED`` tripwire (DoubleTake's
        use-after-free evidence): any later write through a dangling
        pointer disturbs the fill pattern and the end-of-epoch scan sees
        it.
        """
        size = self._live.pop(addr, None)
        if size is None:
            raise GuestFault("free of unallocated address 0x%x" % addr)
        if not self.canaries_enabled:
            return
        try:
            self.unregister_canary(addr, size)
        except GuestFault:
            raise GuestFault(
                "heap corruption detected on free(0x%x)" % addr
            ) from None
        self.process.write(addr, bytes([FREED_FILL_BYTE]) * size)
        self.register_canary(addr, size, kind=KIND_FREED)

    def allocation_size(self, addr):
        """Size of a live allocation (used by the ASan baseline's checker)."""
        size = self._live.get(addr)
        if size is None:
            raise GuestFault("0x%x is not a live allocation" % addr)
        return size

    def live_allocations(self):
        return dict(self._live)

    def bytes_used(self):
        return self._cursor - self.base_va

    # -- snapshot ---------------------------------------------------------

    def state_dict(self):
        return {
            "base_va": self.base_va,
            "size": self.size,
            "table_va": self.table_va,
            "table_capacity": self.table_capacity,
            "canary_value": self.canary_value,
            "canaries_enabled": self.canaries_enabled,
            "cursor": self._cursor,
            "live": dict(self._live),
            "table_index": dict(self._table_index),
        }

    def load_state_dict(self, state):
        self.base_va = state["base_va"]
        self.size = state["size"]
        self.table_va = state["table_va"]
        self.table_capacity = state["table_capacity"]
        self.canary_value = state["canary_value"]
        self.canaries_enabled = state["canaries_enabled"]
        self._cursor = state["cursor"]
        self._live = dict(state["live"])
        self._table_index = dict(state["table_index"])

    @classmethod
    def from_state(cls, process, state):
        """Rebuild a heap object from a snapshot, without touching memory.

        Used when a rollback resurrects a process that had exited after the
        checkpoint; guest memory already holds the table bytes.
        """
        heap = cls.__new__(cls)
        heap.process = process
        heap.load_state_dict(state)
        return heap
