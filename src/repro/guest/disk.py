"""Guest-local disk image (the §3.1 disk-snapshot extension).

The base paper checkpoints CPU and memory and notes the design "can
easily be extended to include disk snapshots as well". This module adds
a block store whose contents participate in the guest's state_dict —
so checkpoints capture it and rollback reverts attacker tampering with
on-disk data, not just memory.

Writes still flow through the device's output sink as before (the
buffered "external write" the paper holds back); the image is the
guest-visible view.
"""

from repro.errors import GuestFault

BLOCK_SIZE = 4096


class BlockStore:
    """A sparse block device image."""

    def __init__(self, block_count):
        if block_count <= 0:
            raise GuestFault("disk must have at least one block")
        self.block_count = block_count
        self._blocks = {}  # index -> bytes (missing = zero block)

    def _check(self, index):
        if not 0 <= index < self.block_count:
            raise GuestFault(
                "block %d outside disk of %d blocks" % (index, self.block_count)
            )

    def read_block(self, index):
        self._check(index)
        return self._blocks.get(index, b"\x00" * BLOCK_SIZE)

    def write_block(self, index, data):
        self._check(index)
        if len(data) > BLOCK_SIZE:
            raise GuestFault(
                "block write of %d bytes exceeds block size %d"
                % (len(data), BLOCK_SIZE)
            )
        self._blocks[index] = bytes(data).ljust(BLOCK_SIZE, b"\x00")

    def blocks_in_use(self):
        return len(self._blocks)

    def state_dict(self):
        return {"block_count": self.block_count,
                "blocks": dict(self._blocks)}

    def load_state_dict(self, state):
        self.block_count = state["block_count"]
        self._blocks = dict(state["blocks"])
