"""Simulated guest machines.

A guest is real bytes in a simulated physical memory: kernel data structures
(task lists, syscall tables, slab caches, EPROCESS chains, handle tables)
are serialized into RAM with a System.map-style symbol table, and user
processes allocate from a canary-placing heap. Introspection (``repro.vmi``)
and forensics (``repro.forensics``) parse those same bytes from outside the
guest, exactly as LibVMI and Volatility do against a real VM.
"""

from repro.guest.memory import PAGE_SIZE, PhysicalMemory
from repro.guest.layout import StructDef
from repro.guest.pagetable import PageTable
from repro.guest.symbols import SymbolMap
from repro.guest.vm import GuestVM
from repro.guest.linux import LinuxGuest
from repro.guest.windows import WindowsGuest

__all__ = [
    "PAGE_SIZE",
    "PhysicalMemory",
    "StructDef",
    "PageTable",
    "SymbolMap",
    "GuestVM",
    "LinuxGuest",
    "WindowsGuest",
]
