"""Simulated guest physical memory.

A flat byte-addressable RAM divided into 4 KiB frames. Every store notifies
registered dirty-page observers — this is the hook the hypervisor's
log-dirty mode attaches to, exactly as Xen intercepts guest stores via
shadow/EPT write protection.
"""

from repro.errors import PhysicalAccessError

PAGE_SIZE = 4096


class PhysicalMemory:
    """Byte-addressable simulated RAM with per-frame dirty notification."""

    def __init__(self, size_bytes):
        if size_bytes <= 0 or size_bytes % PAGE_SIZE != 0:
            raise PhysicalAccessError(
                "memory size must be a positive multiple of %d, got %r"
                % (PAGE_SIZE, size_bytes)
            )
        self.size = size_bytes
        self.frame_count = size_bytes // PAGE_SIZE
        self._ram = bytearray(size_bytes)
        self._observers = []
        self._range_observers = []
        self._write_observers = []
        #: Bumped on every bulk restore that bypasses dirty notification
        #: (``load_bytes`` / ``write_frame`` with ``notify=False``).
        #: Consumers that maintain incremental views of RAM (e.g. the
        #: checkpointer's rollback fast path) compare generations to know
        #: when their tracking went stale.
        self.untracked_loads = 0

    # -- observation ---------------------------------------------------

    def add_dirty_observer(self, callback):
        """Register ``callback(pfn)``, invoked once per frame per store."""
        self._observers.append(callback)

    def remove_dirty_observer(self, callback):
        self._observers.remove(callback)

    def add_dirty_range_observer(self, callback):
        """Register ``callback(first_pfn, last_pfn)`` for batched dirtying.

        A multi-frame store notifies a range observer exactly once with
        the inclusive frame span, instead of once per frame — this is the
        fast path the hypervisor's log-dirty mode uses.
        """
        self._range_observers.append(callback)

    def remove_dirty_range_observer(self, callback):
        self._range_observers.remove(callback)

    def add_write_observer(self, callback):
        """Register ``callback(paddr, data)`` for byte-precise write traps.

        This is the hook Xen-style memory-event monitoring attaches to
        during replay; it is expensive, so nothing registers it in normal
        operation (§4.2: "event monitoring with Xen is expensive").
        """
        self._write_observers.append(callback)

    def remove_write_observer(self, callback):
        self._write_observers.remove(callback)

    def _notify(self, first_frame, last_frame):
        for callback in self._range_observers:
            callback(first_frame, last_frame)
        if self._observers:
            if first_frame == last_frame:
                for callback in self._observers:
                    callback(first_frame)
            else:
                for pfn in range(first_frame, last_frame + 1):
                    for callback in self._observers:
                        callback(pfn)

    def _notify_write(self, paddr, data):
        for callback in self._write_observers:
            callback(paddr, data)

    # -- access --------------------------------------------------------

    def _check_range(self, paddr, length):
        if paddr < 0 or length < 0 or paddr + length > self.size:
            raise PhysicalAccessError(
                "physical access [0x%x, +%d) outside RAM of %d bytes"
                % (paddr, length, self.size)
            )

    def read(self, paddr, length):
        """Read ``length`` bytes at physical address ``paddr``."""
        self._check_range(paddr, length)
        return bytes(self._ram[paddr : paddr + length])

    def write(self, paddr, data):
        """Write ``data`` at physical address ``paddr``, marking frames dirty."""
        length = len(data)
        self._check_range(paddr, length)
        self._ram[paddr : paddr + length] = data
        if length:
            self._notify(paddr // PAGE_SIZE, (paddr + length - 1) // PAGE_SIZE)
            if self._write_observers:
                self._notify_write(paddr, bytes(data))

    def touch_frame(self, pfn, value=0xA5):
        """Dirty one frame with a single byte store (bulk-workload fast path)."""
        if pfn < 0 or pfn >= self.frame_count:
            raise PhysicalAccessError("frame %d outside RAM" % pfn)
        paddr = pfn * PAGE_SIZE
        self._ram[paddr] = value & 0xFF
        self._notify(pfn, pfn)
        if self._write_observers:
            self._notify_write(paddr, bytes([value & 0xFF]))

    def read_frame(self, pfn):
        """Return the 4 KiB contents of one frame."""
        if pfn < 0 or pfn >= self.frame_count:
            raise PhysicalAccessError("frame %d outside RAM" % pfn)
        start = pfn * PAGE_SIZE
        return bytes(self._ram[start : start + PAGE_SIZE])

    def write_frame(self, pfn, data, notify=True):
        """Replace one frame's contents (used by checkpoint restore)."""
        if len(data) != PAGE_SIZE:
            raise PhysicalAccessError(
                "frame write must be exactly %d bytes, got %d" % (PAGE_SIZE, len(data))
            )
        if pfn < 0 or pfn >= self.frame_count:
            raise PhysicalAccessError("frame %d outside RAM" % pfn)
        start = pfn * PAGE_SIZE
        self._ram[start : start + PAGE_SIZE] = data
        if notify:
            self._notify(pfn, pfn)
        else:
            self.untracked_loads += 1

    # -- whole-image operations -----------------------------------------

    def snapshot_bytes(self):
        """A full copy of RAM (used for memory dumps and checkpoints)."""
        return bytes(self._ram)

    def load_bytes(self, image, notify=False):
        """Restore RAM from a full image produced by :meth:`snapshot_bytes`."""
        if len(image) != self.size:
            raise PhysicalAccessError(
                "image size %d does not match RAM size %d" % (len(image), self.size)
            )
        self._ram[:] = image
        if notify:
            self._notify(0, self.frame_count - 1)
        else:
            self.untracked_loads += 1

    def view(self):
        """A read-only memoryview of RAM (zero-copy scanning)."""
        return memoryview(self._ram).toreadonly()
