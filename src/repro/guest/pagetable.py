"""Per-address-space page tables.

A page table maps virtual page numbers to physical frame numbers. The
kernel owns a linear direct map (VA = PA + KERNEL_BASE); user processes own
sparse tables built as their regions are allocated. Introspection performs
the same translations from outside the guest.
"""

from repro.errors import PageFault
from repro.guest.memory import PAGE_SIZE

#: Base of the kernel's direct physical map, in the style of x86-64 Linux.
KERNEL_BASE = 0xFFFF_8800_0000_0000


class PageTable:
    """Sparse VPN -> PFN mapping for one address space."""

    def __init__(self):
        self._entries = {}

    def map(self, vpn, pfn, writable=True):
        self._entries[vpn] = (pfn, writable)

    def unmap(self, vpn):
        self._entries.pop(vpn, None)

    def translate(self, vaddr):
        """Translate a virtual address to a physical address."""
        vpn, offset = divmod(vaddr, PAGE_SIZE)
        entry = self._entries.get(vpn)
        if entry is None:
            raise PageFault(vaddr)
        pfn, _writable = entry
        return pfn * PAGE_SIZE + offset

    def is_mapped(self, vaddr):
        return (vaddr // PAGE_SIZE) in self._entries

    def mapped_vpns(self):
        return sorted(self._entries)

    def entries(self):
        """Iterate ``(vpn, pfn)`` pairs in VPN order."""
        for vpn in sorted(self._entries):
            yield vpn, self._entries[vpn][0]

    def frame_of(self, vaddr):
        """The physical frame backing ``vaddr``."""
        return self.translate(vaddr) // PAGE_SIZE

    def state_dict(self):
        return {"entries": dict(self._entries)}

    def load_state_dict(self, state):
        self._entries = dict(state["entries"])


def kernel_va(paddr):
    """Kernel direct-map virtual address of a physical address."""
    return KERNEL_BASE + paddr


def kernel_pa(vaddr):
    """Physical address behind a kernel direct-map virtual address."""
    if vaddr < KERNEL_BASE:
        raise PageFault(vaddr, "not a kernel direct-map address: 0x%x" % vaddr)
    return vaddr - KERNEL_BASE
