"""Binary struct layouts for guest kernel objects.

Kernel objects are stored in guest physical memory as packed little-endian
records. :class:`StructDef` is the single codec used both by the guest when
*writing* structures and by the introspection layer when *parsing* them, so
the two sides can never disagree about offsets — mirroring how LibVMI and a
real kernel agree via debug symbols.
"""

import struct as _struct

from repro.errors import IntrospectionError

_SCALARS = {
    "u8": "<B",
    "u16": "<H",
    "u32": "<I",
    "u64": "<Q",
    "i8": "<b",
    "i16": "<h",
    "i32": "<i",
    "i64": "<q",
}


class Field:
    """One named field of a :class:`StructDef`."""

    def __init__(self, name, kind, offset):
        self.name = name
        self.kind = kind
        self.offset = offset
        if isinstance(kind, tuple):
            tag, length = kind
            if tag != "bytes":
                raise IntrospectionError("unknown compound field kind %r" % (kind,))
            self.size = length
            self._fmt = None
        else:
            fmt = _SCALARS.get(kind)
            if fmt is None:
                raise IntrospectionError("unknown field kind %r" % (kind,))
            self.size = _struct.calcsize(fmt)
            self._fmt = fmt

    def pack_into(self, buffer, base, value):
        if self._fmt is None:
            data = bytes(value)[: self.size].ljust(self.size, b"\x00")
            buffer[base + self.offset : base + self.offset + self.size] = data
        else:
            _struct.pack_into(self._fmt, buffer, base + self.offset, value)

    def unpack_from(self, buffer, base):
        start = base + self.offset
        if self._fmt is None:
            return bytes(buffer[start : start + self.size])
        return _struct.unpack_from(self._fmt, buffer, start)[0]


class StructDef:
    """A packed record layout: ordered ``(name, kind)`` pairs.

    Kinds are ``u8/u16/u32/u64/i8/i16/i32/i64`` or ``("bytes", n)``.
    """

    def __init__(self, name, fields):
        self.name = name
        self.fields = []
        self._by_name = {}
        offset = 0
        for field_name, kind in fields:
            field = Field(field_name, kind, offset)
            offset += field.size
            self.fields.append(field)
            if field_name in self._by_name:
                raise IntrospectionError(
                    "duplicate field %r in struct %s" % (field_name, name)
                )
            self._by_name[field_name] = field
        self.size = offset

    def field(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise IntrospectionError(
                "struct %s has no field %r" % (self.name, name)
            ) from None

    def offset_of(self, name):
        return self.field(name).offset

    def encode(self, values):
        """Pack a dict of field values into ``self.size`` bytes."""
        buffer = bytearray(self.size)
        for field in self.fields:
            if field.name in values:
                field.pack_into(buffer, 0, values[field.name])
        return bytes(buffer)

    def decode(self, data, base=0):
        """Unpack ``self.size`` bytes (at ``base``) into a dict."""
        if len(data) - base < self.size:
            raise IntrospectionError(
                "buffer too small for struct %s: need %d bytes, have %d"
                % (self.name, self.size, len(data) - base)
            )
        return {field.name: field.unpack_from(data, base) for field in self.fields}

    def read(self, memory, paddr):
        """Read and decode one record from physical memory."""
        return self.decode(memory.read(paddr, self.size))

    def write(self, memory, paddr, values):
        """Encode and write one record into physical memory."""
        memory.write(paddr, self.encode(values))

    def write_field(self, memory, paddr, name, value):
        """Overwrite a single field of a record already in memory."""
        field = self.field(name)
        buffer = bytearray(field.size)
        field.pack_into(buffer, -field.offset, value)
        memory.write(paddr + field.offset, bytes(buffer))

    def read_field(self, memory, paddr, name):
        """Read a single field of a record from physical memory."""
        field = self.field(name)
        data = memory.read(paddr + field.offset, field.size)
        return field.unpack_from(data, -field.offset)


def cstring(raw):
    """Decode a NUL-padded fixed-width byte field into a str."""
    return raw.split(b"\x00", 1)[0].decode("utf-8", errors="replace")
