"""Binary struct layouts for guest kernel objects.

Kernel objects are stored in guest physical memory as packed little-endian
records. :class:`StructDef` is the single codec used both by the guest when
*writing* structures and by the introspection layer when *parsing* them, so
the two sides can never disagree about offsets — mirroring how LibVMI and a
real kernel agree via debug symbols.
"""

import struct as _struct

from repro.errors import IntrospectionError

_SCALARS = {
    "u8": "<B",
    "u16": "<H",
    "u32": "<I",
    "u64": "<Q",
    "i8": "<b",
    "i16": "<h",
    "i32": "<i",
    "i64": "<q",
}

#: struct codes -> numpy little-endian format strings (bytes handled apart).
_NUMPY_FORMATS = {
    "B": "u1", "H": "<u2", "I": "<u4", "Q": "<u8",
    "b": "i1", "h": "<i2", "i": "<i4", "q": "<i8",
}


class Field:
    """One named field of a :class:`StructDef`."""

    def __init__(self, name, kind, offset):
        self.name = name
        self.kind = kind
        self.offset = offset
        if isinstance(kind, tuple):
            tag, length = kind
            if tag != "bytes":
                raise IntrospectionError("unknown compound field kind %r" % (kind,))
            self.size = length
            self._fmt = None
            self.code = "%ds" % length
        else:
            fmt = _SCALARS.get(kind)
            if fmt is None:
                raise IntrospectionError("unknown field kind %r" % (kind,))
            self.size = _struct.calcsize(fmt)
            self._fmt = fmt
            self.code = fmt[1:]

    def pack_into(self, buffer, base, value):
        if self._fmt is None:
            data = bytes(value)[: self.size].ljust(self.size, b"\x00")
            buffer[base + self.offset : base + self.offset + self.size] = data
        else:
            _struct.pack_into(self._fmt, buffer, base + self.offset, value)

    def unpack_from(self, buffer, base):
        start = base + self.offset
        if self._fmt is None:
            return bytes(buffer[start : start + self.size])
        return _struct.unpack_from(self._fmt, buffer, start)[0]


class StructDef:
    """A packed record layout: ordered ``(name, kind)`` pairs.

    Kinds are ``u8/u16/u32/u64/i8/i16/i32/i64`` or ``("bytes", n)``.
    """

    def __init__(self, name, fields):
        self.name = name
        self.fields = []
        self._by_name = {}
        offset = 0
        for field_name, kind in fields:
            field = Field(field_name, kind, offset)
            offset += field.size
            self.fields.append(field)
            if field_name in self._by_name:
                raise IntrospectionError(
                    "duplicate field %r in struct %s" % (field_name, name)
                )
            self._by_name[field_name] = field
        self.size = offset
        # Fields are packed back to back with no padding, so the whole
        # record is one little-endian format string; a single precompiled
        # ``struct.Struct`` unpack replaces the per-field loop on the
        # decode hot path (bit-identical: "Ns" yields the same ``bytes``
        # a field-wise slice copy would).
        self.names = tuple(field.name for field in self.fields)
        self._fused = _struct.Struct("<" + "".join(f.code for f in self.fields))
        assert self._fused.size == self.size
        self._np_dtype = None

    def field(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise IntrospectionError(
                "struct %s has no field %r" % (self.name, name)
            ) from None

    def offset_of(self, name):
        return self.field(name).offset

    def encode(self, values):
        """Pack a dict of field values into ``self.size`` bytes."""
        buffer = bytearray(self.size)
        for field in self.fields:
            if field.name in values:
                field.pack_into(buffer, 0, values[field.name])
        return bytes(buffer)

    def decode(self, data, base=0):
        """Unpack ``self.size`` bytes (at ``base``) into a dict."""
        if len(data) - base < self.size:
            raise IntrospectionError(
                "buffer too small for struct %s: need %d bytes, have %d"
                % (self.name, self.size, len(data) - base)
            )
        return dict(zip(self.names, self._fused.unpack_from(data, base)))

    def decode_scalar(self, data, base=0):
        """Field-at-a-time reference decoder (kept for equivalence tests)."""
        if len(data) - base < self.size:
            raise IntrospectionError(
                "buffer too small for struct %s: need %d bytes, have %d"
                % (self.name, self.size, len(data) - base)
            )
        return {field.name: field.unpack_from(data, base) for field in self.fields}

    def unpack(self, data, base=0):
        """Decode one record into a value tuple ordered like ``names``."""
        if len(data) - base < self.size:
            raise IntrospectionError(
                "buffer too small for struct %s: need %d bytes, have %d"
                % (self.name, self.size, len(data) - base)
            )
        return self._fused.unpack_from(data, base)

    def unpack_slab(self, data, count, base=0):
        """Decode ``count`` contiguous records from a slab in one pass.

        Returns an iterator of value tuples (ordered like ``names``) —
        the vectorized equivalent of calling :meth:`decode` ``count``
        times with a stride of ``size``.
        """
        need = count * self.size
        if len(data) - base < need:
            raise IntrospectionError(
                "slab too small for %d x struct %s: need %d bytes, have %d"
                % (count, self.name, need, len(data) - base)
            )
        view = memoryview(data)[base:base + need]
        return self._fused.iter_unpack(view)

    def numpy_dtype(self):
        """The numpy structured dtype matching this packed record layout.

        ``np.frombuffer(slab, dtype=layout.numpy_dtype())`` views a slab of
        contiguous records as a columnar record array without copying — the
        array counterpart of :meth:`unpack_slab`. Raises ImportError when
        numpy is unavailable; callers gate on their own guarded import.
        """
        if self._np_dtype is None:
            import numpy as np
            formats = [
                "S%d" % field.size if field._fmt is None
                else _NUMPY_FORMATS[field.code]
                for field in self.fields
            ]
            self._np_dtype = np.dtype({
                "names": list(self.names),
                "formats": formats,
                "offsets": [field.offset for field in self.fields],
                "itemsize": self.size,
            })
        return self._np_dtype

    def read(self, memory, paddr):
        """Read and decode one record from physical memory."""
        return self.decode(memory.read(paddr, self.size))

    def write(self, memory, paddr, values):
        """Encode and write one record into physical memory."""
        memory.write(paddr, self.encode(values))

    def write_field(self, memory, paddr, name, value):
        """Overwrite a single field of a record already in memory."""
        field = self.field(name)
        buffer = bytearray(field.size)
        field.pack_into(buffer, -field.offset, value)
        memory.write(paddr + field.offset, bytes(buffer))

    def read_field(self, memory, paddr, name):
        """Read a single field of a record from physical memory."""
        field = self.field(name)
        data = memory.read(paddr + field.offset, field.size)
        return field.unpack_from(data, -field.offset)


def cstring(raw):
    """Decode a NUL-padded fixed-width byte field into a str."""
    return raw.split(b"\x00", 1)[0].decode("utf-8", errors="replace")
