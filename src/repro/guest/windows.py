"""Simulated Windows guest (the §5.6 malware case-study target).

Kernel objects carry 4-byte *pool tags* at the start of each record, which
is what Volatility's pool-scanning plugins (``psscan``, ``netscan``,
``filescan``) key on in a real Windows memory image:

* ``Proc`` — EPROCESS records, doubly linked off ``PsActiveProcessHead``,
* ``TcpE`` — TCP endpoints (sockets),
* ``File`` — file objects, referenced from per-process handle tables,
* ``RKEY`` — registry hive records (so malware "reading the registry"
  actually reads guest memory).

Hiding a process unlinks it from the active list but leaves the pool
record, reproducing the pslist/psscan discrepancy ``psxview`` reports.
"""

import struct

from repro.errors import GuestFault
from repro.guest.layout import StructDef
from repro.guest.memory import PAGE_SIZE
from repro.guest.pagetable import kernel_pa, kernel_va
from repro.guest.vm import GuestVM

from repro.guest.net import (  # noqa: F401  (re-exported vocabulary)
    TCP_CLOSE_WAIT,
    TCP_CLOSED,
    TCP_ESTABLISHED,
    TCP_LISTENING,
    TCP_STATE_NAMES,
    bytes_to_ip,
    ip_to_bytes,
)

POOL_TAG_PROCESS = b"Proc"
POOL_TAG_TCP = b"TcpE"
POOL_TAG_FILE = b"File"
POOL_TAG_REGISTRY = b"RKEY"

EPROCESS = StructDef(
    "eprocess",
    [
        ("pool_tag", ("bytes", 4)),
        ("pid", "u32"),
        ("ppid", "u32"),
        ("pad", "u32"),
        ("create_time", "u64"),
        ("exit_time", "u64"),
        ("links_next", "u64"),
        ("links_prev", "u64"),
        ("handle_table", "u64"),
        ("image_name", ("bytes", 16)),
    ],
)

LIST_HEAD = StructDef(
    "list_head",
    [
        ("next", "u64"),
        ("prev", "u64"),
    ],
)

TCP_ENDPOINT = StructDef(
    "tcp_endpoint",
    [
        ("pool_tag", ("bytes", 4)),
        ("owner_pid", "u32"),
        ("local_ip", ("bytes", 4)),
        ("remote_ip", ("bytes", 4)),
        ("local_port", "u16"),
        ("remote_port", "u16"),
        ("state", "u32"),
    ],
)

FILE_OBJECT = StructDef(
    "file_object",
    [
        ("pool_tag", ("bytes", 4)),
        ("owner_pid", "u32"),
        ("name", ("bytes", 120)),
    ],
)

HANDLE_TABLE = StructDef(
    "handle_table",
    [
        ("magic", "u32"),
        ("count", "u32"),
    ],
)

REGISTRY_KEY = StructDef(
    "registry_key",
    [
        ("pool_tag", ("bytes", 4)),
        ("pad", "u32"),
        ("name", ("bytes", 60)),
        ("value", ("bytes", 60)),
    ],
)

HANDLE_TABLE_MAGIC = 0x42415448  # 'HTAB'
_HANDLE_CAPACITY = 64


class WindowsGuest(GuestVM):
    """A bootable simulated Windows VM (unaided scanning target)."""

    os_name = "windows"
    kernel_version = "10.0.14393-crimes"

    def __init__(self, name="windows-vm", memory_bytes=32 * 1024 * 1024,
                 clock=None, seed=0, **kwargs):
        super().__init__(name, memory_bytes, clock=clock, seed=seed, **kwargs)
        self._eprocess_pa = {}    # pid -> paddr
        self._sockets = []        # paddrs of TcpE records
        self._registry_keys = []  # paddrs of RKEY records
        self._pool_ranges = []    # (start, end) paddr ranges to pool-scan
        self._boot()

    # -- boot ------------------------------------------------------------

    def _boot(self):
        head_pa = self.kalloc.allocate(LIST_HEAD.size, align=64)
        head_va = kernel_va(head_pa)
        LIST_HEAD.write(self.memory, head_pa, {"next": head_va, "prev": head_va})
        self._head_pa = head_pa
        self._head_va = head_va
        self.symbols.define("PsActiveProcessHead", head_va)

        # Pool region: all kernel objects below live inside the kernel
        # bump region; scanners sweep the whole kernel region.
        self._pool_ranges.append((PAGE_SIZE, self.kernel_frames * PAGE_SIZE))

        system = self.create_process("System", ppid=0)
        self.create_process("smss.exe", ppid=system)
        self.create_process("csrss.exe", ppid=system)
        self.create_process("explorer.exe", ppid=system)

        for key, value in (
            ("HKLM\\SOFTWARE\\Vendor\\License", "A1B2-C3D4-E5F6"),
            ("HKCU\\Software\\Mail\\Account", "root@victim.example"),
            ("HKLM\\SYSTEM\\Setup\\OwnerName", "J. Victim"),
            ("HKCU\\Software\\Bank\\LastLogin", "2018-05-02T22:40:11"),
        ):
            self.set_registry_key(key, value)

    # -- process management ------------------------------------------------

    def create_process(self, image_name, ppid=4, handle_capacity=_HANDLE_CAPACITY):
        """Create an EPROCESS + empty handle table; returns the pid."""
        pid = self.allocate_pid() * 4  # Windows pids are multiples of 4
        handle_pa = self.kalloc.allocate(
            HANDLE_TABLE.size + handle_capacity * 8, align=64
        )
        HANDLE_TABLE.write(
            self.memory, handle_pa, {"magic": HANDLE_TABLE_MAGIC, "count": 0}
        )
        eprocess_pa = self.kalloc.allocate(EPROCESS.size, align=64)
        EPROCESS.write(
            self.memory,
            eprocess_pa,
            {
                "pool_tag": POOL_TAG_PROCESS,
                "pid": pid,
                "ppid": ppid,
                "pad": 0,
                "create_time": self.now_us(),
                "exit_time": 0,
                "links_next": 0,
                "links_prev": 0,
                "handle_table": kernel_va(handle_pa),
                "image_name": image_name.encode("utf-8"),
            },
        )
        self._eprocess_pa[pid] = eprocess_pa
        self._link_process(eprocess_pa)
        return pid

    def _link_process(self, eprocess_pa):
        memory = self.memory
        eprocess_va = kernel_va(eprocess_pa)
        tail_va = LIST_HEAD.read_field(memory, self._head_pa, "prev")
        if tail_va == self._head_va:
            LIST_HEAD.write_field(memory, self._head_pa, "next", eprocess_va)
        else:
            EPROCESS.write_field(memory, kernel_pa(tail_va), "links_next", eprocess_va)
        EPROCESS.write_field(memory, eprocess_pa, "links_prev", tail_va)
        EPROCESS.write_field(memory, eprocess_pa, "links_next", self._head_va)
        LIST_HEAD.write_field(memory, self._head_pa, "prev", eprocess_va)

    def _unlink_process(self, eprocess_pa):
        memory = self.memory
        next_va = EPROCESS.read_field(memory, eprocess_pa, "links_next")
        prev_va = EPROCESS.read_field(memory, eprocess_pa, "links_prev")
        if next_va == 0 and prev_va == 0:
            return
        if prev_va == self._head_va:
            LIST_HEAD.write_field(memory, self._head_pa, "next", next_va)
        else:
            EPROCESS.write_field(memory, kernel_pa(prev_va), "links_next", next_va)
        if next_va == self._head_va:
            LIST_HEAD.write_field(memory, self._head_pa, "prev", prev_va)
        else:
            EPROCESS.write_field(memory, kernel_pa(next_va), "links_prev", prev_va)
        EPROCESS.write_field(memory, eprocess_pa, "links_next", 0)
        EPROCESS.write_field(memory, eprocess_pa, "links_prev", 0)

    def _eprocess(self, pid):
        pa = self._eprocess_pa.get(pid)
        if pa is None:
            raise GuestFault("no Windows process with pid %d" % pid)
        return pa

    def terminate_process(self, pid):
        """Exit: unlink from the active list, stamp exit_time, keep the pool record."""
        eprocess_pa = self._eprocess(pid)
        # Clamp to >=1: exit_time 0 means "still running" to the scanners.
        EPROCESS.write_field(
            self.memory, eprocess_pa, "exit_time", max(self.now_us(), 1)
        )
        self._unlink_process(eprocess_pa)

    def hide_process(self, pid):
        """DKOM-style hiding: unlink but leave exit_time zero (still running)."""
        self._unlink_process(self._eprocess(pid))

    # -- handles, sockets, registry ------------------------------------------

    def open_file(self, pid, path):
        """Create a File object and install it in the process's handle table."""
        eprocess_pa = self._eprocess(pid)
        file_pa = self.kalloc.allocate(FILE_OBJECT.size, align=64)
        FILE_OBJECT.write(
            self.memory,
            file_pa,
            {"pool_tag": POOL_TAG_FILE, "owner_pid": pid,
             "name": path.encode("utf-8")},
        )
        table_pa = kernel_pa(
            EPROCESS.read_field(self.memory, eprocess_pa, "handle_table")
        )
        count = HANDLE_TABLE.read_field(self.memory, table_pa, "count")
        if count >= _HANDLE_CAPACITY:
            raise GuestFault("handle table full for pid %d" % pid)
        self.memory.write(
            table_pa + HANDLE_TABLE.size + count * 8,
            struct.pack("<Q", kernel_va(file_pa)),
        )
        HANDLE_TABLE.write_field(self.memory, table_pa, "count", count + 1)
        return kernel_va(file_pa)

    def open_socket(self, pid, local, remote, state=TCP_ESTABLISHED):
        """Create a TcpE record; ``local``/``remote`` are ``(ip, port)``."""
        socket_pa = self.kalloc.allocate(TCP_ENDPOINT.size, align=64)
        TCP_ENDPOINT.write(
            self.memory,
            socket_pa,
            {
                "pool_tag": POOL_TAG_TCP,
                "owner_pid": pid,
                "local_ip": ip_to_bytes(local[0]),
                "remote_ip": ip_to_bytes(remote[0]),
                "local_port": local[1],
                "remote_port": remote[1],
                "state": state,
            },
        )
        self._sockets.append(socket_pa)
        return kernel_va(socket_pa)

    def set_socket_state(self, socket_va, state):
        TCP_ENDPOINT.write_field(self.memory, kernel_pa(socket_va), "state", state)

    def set_registry_key(self, name, value):
        key_pa = self.kalloc.allocate(REGISTRY_KEY.size, align=64)
        REGISTRY_KEY.write(
            self.memory,
            key_pa,
            {
                "pool_tag": POOL_TAG_REGISTRY,
                "pad": 0,
                "name": name.encode("utf-8"),
                "value": value.encode("utf-8"),
            },
        )
        self._registry_keys.append(key_pa)

    def read_registry(self):
        """Guest-side registry enumeration (what the malware program calls)."""
        keys = []
        for key_pa in self._registry_keys:
            record = REGISTRY_KEY.read(self.memory, key_pa)
            keys.append(
                (
                    record["name"].split(b"\x00", 1)[0].decode(),
                    record["value"].split(b"\x00", 1)[0].decode(),
                )
            )
        return keys

    def pool_ranges(self):
        """Physical ranges Volatility-style pool scanners should sweep."""
        return list(self._pool_ranges)

    # -- snapshot -----------------------------------------------------------------

    def state_dict(self):
        state = super().state_dict()
        state["windows"] = {
            "eprocess_pa": dict(self._eprocess_pa),
            "sockets": list(self._sockets),
            "registry_keys": list(self._registry_keys),
        }
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        windows = state["windows"]
        self._eprocess_pa = dict(windows["eprocess_pa"])
        self._sockets = list(windows["sockets"])
        self._registry_keys = list(windows["registry_keys"])
