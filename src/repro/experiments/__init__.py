"""The experiment harness: one function per table/figure of §5.

These are the entry points the ``benchmarks/`` suite calls; each returns
structured rows/series matching what the paper plots, plus helpers to
render them as text. Examples reuse them too.
"""

from repro.experiments.parsec_experiments import (
    run_parsec,
    fig3_parsec_overhead,
    fig4_swaptions_breakdown,
    fig5_interval_sweep,
    fig6a_fluidanimate,
    remus_comparison,
)
from repro.experiments.bitmap_experiments import fig6b_bitmap_scan
from repro.experiments.web_experiments import (
    table1_cost_breakdown,
    fig7_web_performance,
)
from repro.experiments.vmi_experiments import table3_vmi_costs
from repro.experiments.case_studies import (
    case1_overflow,
    case2_malware,
    fig8_attack_timeline,
)
from repro.experiments.safety_experiments import (
    best_effort_window_sweep,
    measure_exposure,
)

__all__ = [
    "run_parsec",
    "fig3_parsec_overhead",
    "fig4_swaptions_breakdown",
    "fig5_interval_sweep",
    "fig6a_fluidanimate",
    "remus_comparison",
    "fig6b_bitmap_scan",
    "table1_cost_breakdown",
    "fig7_web_performance",
    "table3_vmi_costs",
    "case1_overflow",
    "case2_malware",
    "fig8_attack_timeline",
    "best_effort_window_sweep",
    "measure_exposure",
]
