"""PARSEC experiments: Figures 3, 4, 5, 6a and the Remus headline claim.

All runs use ACCOUNTING fidelity (the benchmarks report calibrated dirty
counts; no page bytes move) on a minimal guest, so a full suite sweep
completes in seconds of host time while the virtual-time accounting is
identical to a FULL-fidelity run.
"""

from repro.baselines.asan import AsanBaseline
from repro.baselines.remus_baseline import remus_config
from repro.checkpoint.checkpointer import CopyFidelity
from repro.checkpoint.costmodel import OptimizationLevel
from repro.core.config import CrimesConfig, SafetyMode
from repro.core.crimes import Crimes
from repro.guest.linux import LinuxGuest
from repro.metrics.stats import geometric_mean
from repro.workloads.parsec import ParsecWorkload, parsec_names

#: Small guest: dirty traffic is synthetic, RAM only hosts the kernel graph.
_BENCH_VM_BYTES = 4 * 1024 * 1024
_NATIVE_RUNTIME_MS = 6000.0

#: Figure 3/4/5's checkpoint interval.
DEFAULT_INTERVAL_MS = 200.0


class ParsecRunResult:
    """Measured outcome of one benchmark under one configuration."""

    __slots__ = ("benchmark", "level", "interval_ms", "normalized_runtime",
                 "mean_pause_ms", "mean_dirty_pages", "phase_breakdown",
                 "epochs")

    def __init__(self, **kwargs):
        for name in self.__slots__:
            setattr(self, name, kwargs[name])

    def __repr__(self):
        return "ParsecRunResult(%s/%s: %.3fx)" % (
            self.benchmark, self.level.value, self.normalized_runtime,
        )


def run_parsec(benchmark, level=OptimizationLevel.FULL,
               interval_ms=DEFAULT_INTERVAL_MS, config=None, seed=0,
               native_runtime_ms=_NATIVE_RUNTIME_MS):
    """Run one PARSEC benchmark to completion under the epoch loop."""
    vm = LinuxGuest(
        name="parsec-%s" % benchmark, memory_bytes=_BENCH_VM_BYTES, seed=seed
    )
    if config is None:
        config = CrimesConfig(
            epoch_interval_ms=interval_ms,
            safety=SafetyMode.SYNCHRONOUS,
            optimization=level,
            fidelity=CopyFidelity.ACCOUNTING,
            seed=seed,
        )
    crimes = Crimes(vm, config)
    workload = crimes.add_program(
        ParsecWorkload(benchmark, seed=seed, native_runtime_ms=native_runtime_ms)
    )
    crimes.start()
    start_ms = crimes.clock.now
    crimes.run()
    wall_ms = crimes.clock.now - start_ms
    return ParsecRunResult(
        benchmark=benchmark,
        level=config.optimization,
        interval_ms=config.epoch_interval_ms,
        normalized_runtime=wall_ms / workload.work_done_ms,
        mean_pause_ms=crimes.mean_pause_ms(),
        mean_dirty_pages=crimes.mean_dirty_pages(),
        phase_breakdown=crimes.mean_phase_breakdown(),
        epochs=crimes.epochs_run,
    )


def fig3_parsec_overhead(interval_ms=DEFAULT_INTERVAL_MS, seed=0,
                         benchmarks=None,
                         native_runtime_ms=_NATIVE_RUNTIME_MS):
    """Figure 3: normalized runtime of the whole suite under five schemes.

    Returns ``{scheme: {benchmark: normalized_runtime}}`` for schemes
    Full, Pre-map, Memcpy, No-opt, AS — plus a ``geomean`` entry each.
    """
    benchmarks = list(benchmarks or parsec_names())
    results = {}
    for level in (OptimizationLevel.FULL, OptimizationLevel.PREMAP,
                  OptimizationLevel.MEMCPY, OptimizationLevel.NO_OPT):
        per_benchmark = {}
        for benchmark in benchmarks:
            run = run_parsec(
                benchmark, level=level, interval_ms=interval_ms, seed=seed,
                native_runtime_ms=native_runtime_ms,
            )
            per_benchmark[benchmark] = run.normalized_runtime
        per_benchmark["geomean"] = geometric_mean(
            [per_benchmark[b] for b in benchmarks]
        )
        results[level.value] = per_benchmark
    asan = {b: AsanBaseline(b).normalized_runtime() for b in benchmarks}
    asan["geomean"] = geometric_mean([asan[b] for b in benchmarks])
    results["AS"] = asan
    return results


def fig4_swaptions_breakdown(interval_ms=DEFAULT_INTERVAL_MS, seed=0):
    """Figure 4: absolute per-phase pause breakdown for swaptions.

    Returns ``{level: {phase: ms}}`` plus ``total`` per level.
    """
    results = {}
    for level in (OptimizationLevel.FULL, OptimizationLevel.PREMAP,
                  OptimizationLevel.MEMCPY, OptimizationLevel.NO_OPT):
        run = run_parsec(
            "swaptions", level=level, interval_ms=interval_ms, seed=seed
        )
        breakdown = dict(run.phase_breakdown)
        breakdown["total"] = sum(breakdown.values())
        results[level.value] = breakdown
    return results


def fig5_interval_sweep(benchmarks=("freqmine", "swaptions", "volrend",
                                    "water-spatial"),
                        intervals=(60, 80, 100, 120, 140, 160, 180, 200),
                        seed=0):
    """Figure 5: runtime / pause time / dirty pages vs epoch interval.

    Returns ``{benchmark: [{interval, normalized_runtime, pause_ms,
    dirty_pages}, ...]}`` under Full optimization.
    """
    results = {}
    for benchmark in benchmarks:
        series = []
        for interval in intervals:
            run = run_parsec(
                benchmark, level=OptimizationLevel.FULL,
                interval_ms=float(interval), seed=seed,
            )
            series.append(
                {
                    "interval": interval,
                    "normalized_runtime": run.normalized_runtime,
                    "pause_ms": run.mean_pause_ms,
                    "dirty_pages": run.mean_dirty_pages,
                }
            )
        results[benchmark] = series
    return results


def fig6a_fluidanimate(intervals=(60, 80, 100, 120, 140, 160, 180, 200),
                       seed=0, native_runtime_ms=3000.0):
    """Figure 6a: fluidanimate normalized runtime per optimization level."""
    results = {}
    for level in (OptimizationLevel.FULL, OptimizationLevel.PREMAP,
                  OptimizationLevel.MEMCPY, OptimizationLevel.NO_OPT):
        series = []
        for interval in intervals:
            run = run_parsec(
                "fluidanimate", level=level, interval_ms=float(interval),
                seed=seed, native_runtime_ms=native_runtime_ms,
            )
            series.append(
                {"interval": interval,
                 "normalized_runtime": run.normalized_runtime}
            )
        results[level.value] = series
    return results


def remus_comparison(interval_ms=DEFAULT_INTERVAL_MS, seed=0,
                     benchmarks=None):
    """The §1 headline: CRIMES vs stock Remus (remote backup, no scans).

    Returns geomean normalized runtimes and the relative improvement.
    """
    benchmarks = list(benchmarks or parsec_names())
    crimes_values = []
    remus_values = []
    for benchmark in benchmarks:
        crimes_values.append(
            run_parsec(benchmark, level=OptimizationLevel.FULL,
                       interval_ms=interval_ms, seed=seed).normalized_runtime
        )
        remus_values.append(
            run_parsec(
                benchmark,
                config=remus_config(epoch_interval_ms=interval_ms, seed=seed),
                seed=seed,
            ).normalized_runtime
        )
    crimes_geomean = geometric_mean(crimes_values)
    remus_geomean = geometric_mean(remus_values)
    return {
        "crimes_geomean": crimes_geomean,
        "remus_geomean": remus_geomean,
        "improvement": 1.0 - crimes_geomean / remus_geomean,
    }
