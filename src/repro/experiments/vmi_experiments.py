"""Table 3: LibVMI analysis costs, plus the §5.3 Volatility comparison."""

from repro.forensics.dumps import MemoryDump
from repro.forensics.volatility import VolatilityFramework
from repro.guest.linux import LinuxGuest
from repro.hypervisor.xen import Hypervisor
from repro.vmi.libvmi import VMIInstance


def _prepared_guest(processes=100, modules=80, seed=0):
    """A guest shaped like the paper's Ubuntu VM: ~100 tasks, ~80 modules."""
    vm = LinuxGuest(name="vmi-cost", memory_bytes=32 * 1024 * 1024, seed=seed)
    for index in range(processes):
        vm.create_process("daemon-%02d" % index, heap_pages=2,
                          canaries_enabled=False)
    for index in range(modules):
        vm.load_module("mod_%02d" % index, 0x4000 + index * 0x200)
    return vm


def table3_vmi_costs(iterations=100, processes=100, seed=0):
    """Table 3: init / preprocessing / memory-analysis costs in µs.

    Runs ``process-list`` and ``module-list`` ``iterations`` times each on
    a fresh VMI instance, mirroring the paper's measurement. Also returns
    the Volatility comparison (≈2.5 s init, ≈500 ms per scan).
    """
    vm = _prepared_guest(processes=processes, seed=seed)
    hypervisor = Hypervisor(clock=vm.clock)
    domain = hypervisor.create_domain(vm)

    rows = {}
    for scan in ("process-list", "module-list"):
        vmi = VMIInstance(domain, seed=seed)
        vmi.take_cost_ms()  # drain init+preprocess (reported separately)
        total_analysis_ms = 0.0
        for _ in range(iterations):
            if scan == "process-list":
                vmi.list_processes()
            else:
                vmi.list_modules()
            total_analysis_ms += vmi.take_cost_ms()
        rows[scan] = {
            "initialization_us": vmi.init_cost_ms * 1000.0,
            "preprocessing_us": vmi.preprocess_cost_ms * 1000.0,
            "memory_analysis_us": total_analysis_ms / iterations * 1000.0,
        }

    # Volatility runs the identical process scan over a captured dump.
    volatility = VolatilityFramework(seed=seed)
    init_ms = volatility.take_cost_ms()
    dump = MemoryDump.from_vm(vm, label="table3")
    volatility.run("linux_pslist", dump)
    scan_ms = volatility.take_cost_ms()
    rows["volatility"] = {
        "initialization_us": init_ms * 1000.0,
        "process_scan_us": scan_ms * 1000.0,
    }
    return rows
