"""Case studies: §5.5 (overflow + Figure 8 timeline) and §5.6 (malware)."""

from repro.core.config import CrimesConfig, SafetyMode
from repro.core.crimes import Crimes
from repro.detectors.canary import CanaryScanModule
from repro.detectors.malware import MalwareScanModule
from repro.errors import CrimesError
from repro.guest.linux import LinuxGuest
from repro.guest.windows import WindowsGuest
from repro.workloads.attacks import MalwareProgram, OverflowAttackProgram

_CASE_VM_BYTES = 16 * 1024 * 1024


def case1_overflow(interval_ms=50.0, trigger_epoch=3, seed=7,
                   attack_offset_fraction=0.488):
    """Run the §5.5 buffer-overflow case study end to end.

    Returns a dict with the framework, attack program, analysis outcome,
    and derived latencies (attack → detection → replay → report).
    """
    vm = LinuxGuest(name="victim-linux", memory_bytes=_CASE_VM_BYTES,
                    seed=seed)
    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=interval_ms,
                     safety=SafetyMode.SYNCHRONOUS, seed=seed),
    )
    crimes.install_module(CanaryScanModule())
    attack = crimes.add_program(
        OverflowAttackProgram(
            trigger_epoch=trigger_epoch,
            attack_offset_fraction=attack_offset_fraction,
        )
    )
    crimes.start()
    crimes.run(max_epochs=trigger_epoch + 3)
    outcome = crimes.last_outcome
    if outcome is None:
        raise CrimesError("case study 1 did not detect the overflow")

    timeline = outcome.timeline
    detect_time = timeline.when("audit failed: %s" % outcome.finding.kind)
    return {
        "crimes": crimes,
        "attack": attack,
        "outcome": outcome,
        "attack_time_ms": attack.attack_time_ms,
        "detect_latency_ms": detect_time - attack.attack_time_ms,
        "replay_ready_ms": timeline.when("rollback + replay prepared")
        - attack.attack_time_ms,
        "escaped_packets": len(crimes.external_sink.packets),
    }


def fig8_attack_timeline(interval_ms=50.0, seed=7):
    """Figure 8's milestone sequence, offsets relative to the exploit."""
    case = case1_overflow(interval_ms=interval_ms, seed=seed)
    outcome = case["outcome"]
    t0 = case["attack_time_ms"]
    milestones = [("attack executed (t0)", 0.0)]
    milestones.extend(
        (label, when - t0) for when, label in outcome.timeline
    )
    return {
        "milestones": milestones,
        "pinpoint": outcome.pinpoint,
        "escaped_packets": case["escaped_packets"],
        "report": outcome.report,
    }


def case2_malware(interval_ms=50.0, trigger_epoch=2, seed=3, hide=False):
    """Run the §5.6 Windows malware case study end to end."""
    vm = WindowsGuest(name="victim-windows", memory_bytes=_CASE_VM_BYTES,
                      seed=seed)
    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=interval_ms,
                     safety=SafetyMode.SYNCHRONOUS, seed=seed),
    )
    crimes.install_module(MalwareScanModule())
    malware = crimes.add_program(
        MalwareProgram(trigger_epoch=trigger_epoch, hide=hide)
    )
    crimes.start()
    crimes.run(max_epochs=trigger_epoch + 3)
    outcome = crimes.last_outcome
    if outcome is None:
        raise CrimesError("case study 2 did not detect the malware")
    return {
        "crimes": crimes,
        "malware": malware,
        "outcome": outcome,
        "report": outcome.report,
        "escaped_packets": len(crimes.external_sink.packets),
        "escaped_disk_writes": len(crimes.external_sink.disk_writes),
    }
