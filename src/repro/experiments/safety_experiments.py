"""Quantifying the Best Effort window of vulnerability (§5.4).

"It is hard to quantify the damage an attack can do, but we can quantify
the protection in some way — the epoch interval still will determine how
often we scan for attacks, so we can still guarantee that a system will
be compromised for at most X milliseconds."

This experiment measures X directly: a compromised program exfiltrates a
packet per simulated beat from the moment of the exploit; we count what
escapes before CRIMES suspends the VM, under both safety modes.
"""

from repro.core.config import CrimesConfig, SafetyMode
from repro.core.crimes import Crimes
from repro.detectors.canary import CanaryScanModule
from repro.guest.devices import Packet
from repro.guest.linux import LinuxGuest
from repro.workloads.base import GuestProgram

_VM_BYTES = 8 * 1024 * 1024


class _BeatingExfiltrator(GuestProgram):
    """Overflows a buffer at the trigger epoch (the memory evidence the
    canary scan catches in either safety mode), then exfiltrates one
    packet per millisecond beat until stopped."""

    name = "beating-exfil"

    def __init__(self, trigger_epoch):
        super().__init__()
        self.trigger_epoch = trigger_epoch
        self._epoch = 0
        self._pid = None
        self.first_exfil_ms = None

    def bind(self, vm):
        super().bind(vm)
        self._pid = vm.create_process("beating-victim").pid

    def step(self, start_ms, interval_ms):
        self._epoch += 1
        if self._epoch < self.trigger_epoch:
            return {}
        if self.first_exfil_ms is None:
            # The exploit: clobber a heap canary (detectable evidence).
            process = self.vm.processes[self._pid]
            victim = process.malloc(32)
            process.write(victim, b"\x41" * 40)
            self.first_exfil_ms = start_ms
        beats = max(int(interval_ms), 1)
        for beat in range(beats):
            self.vm.nic.send(
                Packet(
                    "10.0.0.9:4444",
                    "203.0.113.50:443",
                    b"EXFIL beat %d of epoch %d" % (beat, self._epoch),
                )
            )
        return {}

    def state_dict(self):
        return {"epoch": self._epoch, "pid": self._pid,
                "first_exfil_ms": self.first_exfil_ms}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._pid = state["pid"]
        self.first_exfil_ms = state["first_exfil_ms"]


def measure_exposure(interval_ms, safety, trigger_epoch=2, seed=101):
    """Run one attack under the given safety mode; returns exposure stats.

    * ``escaped_packets`` — exfil packets that truly left the host,
    * ``window_ms`` — time from the first exfil attempt until the VM was
      suspended (the compromise window the paper bounds by the interval).
    """
    vm = LinuxGuest(name="exposure", memory_bytes=_VM_BYTES, seed=seed)
    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=interval_ms, safety=safety,
                     auto_respond=False, seed=seed),
    )
    crimes.install_module(CanaryScanModule())
    attack = crimes.add_program(_BeatingExfiltrator(trigger_epoch))
    crimes.start()
    crimes.run(max_epochs=trigger_epoch + 3)
    if not crimes.suspended:
        raise RuntimeError("attack was not detected")
    escaped = [
        packet for packet in crimes.external_sink.packets
        if packet.payload.startswith(b"EXFIL")
    ]
    return {
        "interval_ms": interval_ms,
        "safety": safety.value,
        "escaped_packets": len(escaped),
        "window_ms": crimes.clock.now - attack.first_exfil_ms,
    }


def best_effort_window_sweep(intervals=(20.0, 50.0, 100.0, 200.0),
                             seed=101):
    """§5.4's quantified guarantee, per interval and safety mode."""
    rows = []
    for interval in intervals:
        for safety in (SafetyMode.SYNCHRONOUS, SafetyMode.BEST_EFFORT):
            rows.append(
                measure_exposure(interval, safety, seed=seed)
            )
    return rows
