"""Figure 6b: simulated bitmap-scan cost vs VM size.

The paper generates random bitmaps "representative of the size of a VM"
and compares bit-by-bit scanning against word-chunk scanning. We do both:
the *figure series* come from the calibrated cost model over 1-16 GiB
VMs, and :func:`functional_scan_check` runs the two real scan algorithms
over an actual random bitmap to verify they find identical dirty sets
(with the word scan visiting far fewer bits).
"""

from repro.checkpoint.costmodel import CheckpointCostModel, OptimizationLevel
from repro.hypervisor.dirty import DirtyBitmap
from repro.sim.rng import SeededStream

#: 4 KiB frames per GiB of guest RAM.
FRAMES_PER_GIB = 262144


def fig6b_bitmap_scan(sizes_gb=(1, 2, 4, 6, 8, 10, 12, 14, 16),
                      dirty_fraction=0.02, cost_model=None):
    """Scan cost (ms) vs VM size for both strategies.

    Returns rows ``{size_gb, not_optimized_ms, optimized_ms}``.
    """
    costs = cost_model if cost_model is not None else CheckpointCostModel()
    rows = []
    for size_gb in sizes_gb:
        frames = int(size_gb * FRAMES_PER_GIB)
        dirty = int(frames * dirty_fraction)
        rows.append(
            {
                "size_gb": size_gb,
                "not_optimized_ms": costs.bitscan_ms(
                    dirty, OptimizationLevel.NO_OPT, nominal_frames=frames
                ),
                "optimized_ms": costs.bitscan_ms(
                    dirty, OptimizationLevel.FULL, nominal_frames=frames
                ),
            }
        )
    return rows


def functional_scan_check(frame_count=65536, dirty_fraction=0.02, seed=0):
    """Run both real scan algorithms on one random bitmap.

    Returns ``{dirty_count, bit_stats, word_stats, identical}`` where
    ``identical`` confirms the two strategies found the same frames.
    """
    rng = SeededStream(seed, "fig6b")
    bitmap = DirtyBitmap(frame_count)
    bitmap.load_random(rng, dirty_fraction)

    bit_dirty, bit_stats = bitmap.scan_bit_by_bit()
    word_dirty, word_stats = bitmap.scan_by_words()
    return {
        "dirty_count": bitmap.count(),
        "bit_stats": bit_stats,
        "word_stats": word_stats,
        "identical": bit_dirty == word_dirty,
        "bits_saved_fraction": 1.0
        - word_stats.bits_visited / float(bit_stats.bits_visited),
    }
