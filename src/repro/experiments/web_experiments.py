"""Web-server experiments: Table 1 and Figure 7."""

from repro.checkpoint.checkpointer import CopyFidelity
from repro.checkpoint.costmodel import OptimizationLevel
from repro.core.config import CrimesConfig, SafetyMode
from repro.core.crimes import Crimes
from repro.guest.linux import LinuxGuest
from repro.netbuf.buffer import BufferMode
from repro.workloads.webserver import (
    WebServerExperiment,
    WebServerWorkload,
    baseline_web_result,
)

_BENCH_VM_BYTES = 4 * 1024 * 1024


def table1_cost_breakdown(interval_ms=20.0, epochs=50, seed=0):
    """Table 1: per-phase pause costs of the *unoptimized* pipeline at
    20 ms epochs under light/medium/high web load.

    Returns rows ``{workload, suspend, vmi, bitscan, map, copy, resume}``
    (all milliseconds, averaged over ``epochs`` committed epochs).
    """
    rows = []
    for load in ("light", "medium", "high"):
        vm = LinuxGuest(
            name="web-%s" % load, memory_bytes=_BENCH_VM_BYTES, seed=seed
        )
        crimes = Crimes(
            vm,
            CrimesConfig(
                epoch_interval_ms=interval_ms,
                safety=SafetyMode.SYNCHRONOUS,
                optimization=OptimizationLevel.NO_OPT,
                fidelity=CopyFidelity.ACCOUNTING,
                seed=seed,
            ),
        )
        crimes.add_program(WebServerWorkload(load=load, seed=seed))
        crimes.start()
        crimes.run(max_epochs=epochs)
        breakdown = crimes.mean_phase_breakdown()
        rows.append(
            {
                "workload": load.capitalize(),
                **{phase: round(value, 2) for phase, value in breakdown.items()},
                "dirty_pages": round(crimes.mean_dirty_pages()),
            }
        )
    return rows


def fig7_web_performance(intervals=(20, 40, 60, 80, 100, 120, 140, 160, 180,
                                    200),
                         load="medium", duration_ms=4000.0, seed=0):
    """Figure 7: normalized latency and throughput of NGINX under wrk.

    Returns ``{"baseline": {...}, "synchronous": [rows], "best_effort":
    [rows]}`` where each row has interval, latency/throughput (absolute
    and normalized against the unprotected baseline).
    """
    baseline = baseline_web_result(
        load=load, duration_ms=duration_ms, seed=seed
    )
    results = {
        "baseline": {
            "latency_ms": baseline.mean_latency_ms,
            "throughput_rps": baseline.throughput_rps,
        }
    }
    for label, mode in (("synchronous", BufferMode.SYNCHRONOUS),
                        ("best_effort", BufferMode.BEST_EFFORT)):
        series = []
        for interval in intervals:
            run = WebServerExperiment(
                interval_ms=float(interval), buffering=mode, load=load,
                duration_ms=duration_ms, seed=seed,
            ).run()
            series.append(
                {
                    "interval": interval,
                    "latency_ms": run.mean_latency_ms,
                    "throughput_rps": run.throughput_rps,
                    "norm_latency": run.mean_latency_ms
                    / baseline.mean_latency_ms,
                    "norm_throughput": run.throughput_rps
                    / baseline.throughput_rps,
                }
            )
        results[label] = series
    return results
