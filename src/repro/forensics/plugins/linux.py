"""Linux forensics plugins (the §5.5 buffer-overflow case-study battery)."""

import struct

from repro.errors import ForensicsError
from repro.forensics.volatility import plugin
from repro.guest.layout import cstring
from repro.guest.linux import (
    KMEM_CACHE,
    MM_STRUCT,
    MODULE,
    SYSCALL_COUNT,
    TASK_MAGIC,
    TASK_STRUCT,
    VM_AREA,
)
from repro.guest.memory import PAGE_SIZE
from repro.guest.pagetable import kernel_pa, kernel_va

_MAX_PID = 1 << 20


def _require_linux(dump):
    if dump.os_name != "linux":
        raise ForensicsError("plugin requires a Linux memory dump")


def _task_row(record, source_va):
    return {
        "pid": record["pid"],
        "uid": record["uid"],
        "name": cstring(record["comm"]),
        "state": record["state"],
        "start_time": record["start_time"],
        "task_va": source_va,
        "in_use": bool(record["flags"] & 0x1),
    }


@plugin("linux_pslist")
def linux_pslist(dump):
    """Walk init_task's circular task list."""
    _require_linux(dump)
    head_va = dump.lookup_symbol("init_task")
    rows = []
    current = head_va
    seen = set()
    while True:
        if current in seen:
            raise ForensicsError("corrupt task list in dump")
        seen.add(current)
        record = TASK_STRUCT.decode(dump.read(kernel_pa(current), TASK_STRUCT.size))
        rows.append(_task_row(record, current))
        current = record["tasks_next"]
        if current == head_va:
            return rows
        if current == 0:
            raise ForensicsError("task list broken: NULL tasks_next")


@plugin("linux_psscan", pool_scan=True)
def linux_psscan(dump):
    """Sweep the task_struct slab for TASK magics (finds ghosts)."""
    _require_linux(dump)
    cache_va = dump.lookup_symbol("kmem_cache_task")
    cache = KMEM_CACHE.decode(dump.read(kernel_pa(cache_va), KMEM_CACHE.size))
    base = kernel_pa(cache["base"])
    rows = []
    for slot in range(cache["slot_count"]):
        slot_pa = base + slot * cache["slot_size"]
        magic = struct.unpack("<I", dump.read(slot_pa, 4))[0]
        if magic != TASK_MAGIC:
            continue
        record = TASK_STRUCT.decode(dump.read(slot_pa, TASK_STRUCT.size))
        if record["pid"] < _MAX_PID:
            rows.append(_task_row(record, kernel_va(slot_pa)))
    return rows


@plugin("linux_pidhashtable")
def linux_pidhashtable(dump):
    """Walk every pid-hash chain (second live view)."""
    _require_linux(dump)
    hash_pa = kernel_pa(dump.lookup_symbol("pid_hash"))
    rows = []
    for bucket in range(64):
        current = struct.unpack("<Q", dump.read(hash_pa + bucket * 8, 8))[0]
        hops = 0
        while current:
            record = TASK_STRUCT.decode(
                dump.read(kernel_pa(current), TASK_STRUCT.size)
            )
            rows.append(_task_row(record, current))
            current = record["pid_chain"]
            hops += 1
            if hops > 65536:
                raise ForensicsError("pid hash chain does not terminate")
    return rows


@plugin("linux_psxview", pool_scan=True)
def linux_psxview(dump):
    """Cross-view: pslist × pid_hash × slab scan.

    A task present in kmem_cache/pid_hash but missing from pslist is the
    classic signature of rootkit process hiding (§4.2 Memory Forensics).
    """
    listed = {row["task_va"] for row in linux_pslist(dump)}
    hashed = {row["task_va"] for row in linux_pidhashtable(dump)}
    rows = []
    for row in linux_psscan(dump):
        task_va = row["task_va"]
        in_pslist = task_va in listed
        in_pid_hash = task_va in hashed
        rows.append(
            {
                **row,
                "in_pslist": in_pslist,
                "in_pid_hash": in_pid_hash,
                "in_kmem_cache": True,
                "suspicious": row["in_use"] and not in_pslist,
            }
        )
    return rows


@plugin("linux_lsmod")
def linux_lsmod(dump):
    """Walk the kernel module list."""
    _require_linux(dump)
    head_pa = kernel_pa(dump.lookup_symbol("modules"))
    current = struct.unpack("<Q", dump.read(head_pa, 8))[0]
    rows = []
    while current:
        record = MODULE.decode(dump.read(kernel_pa(current), MODULE.size))
        rows.append(
            {
                "name": cstring(record["name"]),
                "base": record["base"],
                "size": record["size"],
            }
        )
        current = record["next"]
        if len(rows) > 65536:
            raise ForensicsError("module list does not terminate")
    return rows


@plugin("linux_check_syscall")
def linux_check_syscall(dump, reference=None):
    """Report syscall-table entries (flagging mismatches vs a reference)."""
    _require_linux(dump)
    table_pa = kernel_pa(dump.lookup_symbol("sys_call_table"))
    raw = dump.read(table_pa, SYSCALL_COUNT * 8)
    entries = struct.unpack("<%dQ" % SYSCALL_COUNT, raw)
    rows = []
    for index, address in enumerate(entries):
        row = {"index": index, "address": address}
        if reference is not None:
            row["hijacked"] = address != reference[index]
        rows.append(row)
    return rows


@plugin("linux_proc_maps")
def linux_proc_maps(dump, pid):
    """List a process's memory regions (VMAs) from its mm_struct."""
    _require_linux(dump)
    for row in linux_pslist(dump):
        if row["pid"] != pid:
            continue
        record = TASK_STRUCT.decode(
            dump.read(kernel_pa(row["task_va"]), TASK_STRUCT.size)
        )
        if record["mm"] == 0:
            return []
        mm = MM_STRUCT.decode(dump.read(kernel_pa(record["mm"]), MM_STRUCT.size))
        vma_pa = kernel_pa(mm["vma_array"])
        rows = []
        for index in range(mm["vma_count"]):
            vma = VM_AREA.decode(
                dump.read(vma_pa + index * VM_AREA.size, VM_AREA.size)
            )
            rows.append(
                {
                    "pid": pid,
                    "start": vma["start"],
                    "end": vma["end"],
                    "flags": vma["flags"],
                    "name": cstring(vma["name"]),
                }
            )
        return rows
    raise ForensicsError("linux_proc_maps: no process with pid %d" % pid)


@plugin("linux_lsof")
def linux_lsof(dump, pid=None):
    """Walk the kernel's open-file chain (optionally filtered by pid)."""
    _require_linux(dump)
    from repro.guest.linux import FILE_MAGIC, FILE_OBJECT

    head_pa = kernel_pa(dump.lookup_symbol("file_table"))
    current = struct.unpack("<Q", dump.read(head_pa, 8))[0]
    rows = []
    hops = 0
    while current:
        record = FILE_OBJECT.decode(
            dump.read(kernel_pa(current), FILE_OBJECT.size)
        )
        if record["magic"] != FILE_MAGIC:
            raise ForensicsError("corrupt file object at 0x%x" % current)
        if pid is None or record["pid"] == pid:
            rows.append(
                {
                    "pid": record["pid"],
                    "path": cstring(record["path"]),
                    "file_va": current,
                }
            )
        current = record["next"]
        hops += 1
        if hops > 65536:
            raise ForensicsError("file table does not terminate")
    return rows


@plugin("linux_netstat")
def linux_netstat(dump):
    """Walk the kernel's TCP socket list."""
    _require_linux(dump)
    from repro.guest.linux import SOCKET, SOCKET_MAGIC
    from repro.guest.net import TCP_STATE_NAMES, bytes_to_ip

    head_pa = kernel_pa(dump.lookup_symbol("tcp_sockets"))
    current = struct.unpack("<Q", dump.read(head_pa, 8))[0]
    rows = []
    while current:
        record = SOCKET.decode(dump.read(kernel_pa(current), SOCKET.size))
        if record["magic"] != SOCKET_MAGIC:
            raise ForensicsError("corrupt socket object at 0x%x" % current)
        rows.append(
            {
                "protocol": "TCPv4",
                "owner_pid": record["pid"],
                "local": "%s:%d" % (bytes_to_ip(record["local_ip"]),
                                    record["local_port"]),
                "remote": "%s:%d" % (bytes_to_ip(record["remote_ip"]),
                                     record["remote_port"]),
                "state": TCP_STATE_NAMES.get(
                    record["state"], "UNKNOWN(%d)" % record["state"]
                ),
            }
        )
        current = record["next"]
        if len(rows) > 65536:
            raise ForensicsError("socket list does not terminate")
    return rows


#: Injected-payload signatures linux_malfind sweeps process memory for.
MALFIND_SIGNATURES = (
    ("meterpreter", b"METERPRETER_STAGE2"),
    ("shellcode-nop-sled", b"\x90" * 32),
    ("eicar", b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR"),
)


@plugin("linux_malfind", pool_scan=True)
def linux_malfind(dump, signatures=None):
    """Sweep every process's mapped regions for injected-payload patterns.

    The Volatility plugin of the same name hunts for suspicious
    executable mappings; here the per-region byte sweep plays that role
    over the simulated address spaces.
    """
    _require_linux(dump)
    chosen = tuple(signatures or MALFIND_SIGNATURES)
    rows = []
    for row in linux_pslist(dump):
        pid = row["pid"]
        if pid == 0:
            continue
        try:
            regions = linux_proc_maps(dump, pid)
        except ForensicsError:
            continue
        for vma in regions:
            length = vma["end"] - vma["start"]
            data = dump.read_va(vma["start"], length, pid=pid)
            for label, needle in chosen:
                offset = data.find(needle)
                if offset != -1:
                    rows.append(
                        {
                            "pid": pid,
                            "process": row["name"],
                            "region": vma["name"],
                            "vaddr": vma["start"] + offset,
                            "signature": label,
                        }
                    )
    return rows


@plugin("linux_dump_map")
def linux_dump_map(dump, pid, region=None):
    """Extract the bytes of a process's memory regions (§5.5's 5-second
    per-process dump that analysts inspect for the attack's root cause)."""
    _require_linux(dump)
    rows = []
    for vma in linux_proc_maps(dump, pid):
        name = vma["name"].strip("[]")
        if region is not None and name != region:
            continue
        length = vma["end"] - vma["start"]
        data = bytearray()
        cursor = vma["start"]
        while cursor < vma["end"]:
            chunk = min(PAGE_SIZE - cursor % PAGE_SIZE, vma["end"] - cursor)
            data.extend(dump.read_va(cursor, chunk, pid=pid))
            cursor += chunk
        rows.append(
            {
                "pid": pid,
                "region": name,
                "start": vma["start"],
                "length": length,
                "data": bytes(data),
            }
        )
    if region is not None and not rows:
        raise ForensicsError(
            "linux_dump_map: pid %d has no region %r" % (pid, region)
        )
    return rows
