"""Windows forensics plugins (the §5.6 malware case-study battery)."""

import struct

from repro.errors import ForensicsError
from repro.forensics.volatility import plugin
from repro.guest.layout import cstring
from repro.guest.pagetable import kernel_pa, kernel_va
from repro.guest.windows import (
    EPROCESS,
    FILE_OBJECT,
    HANDLE_TABLE,
    HANDLE_TABLE_MAGIC,
    LIST_HEAD,
    POOL_TAG_FILE,
    POOL_TAG_PROCESS,
    POOL_TAG_TCP,
    TCP_ENDPOINT,
    TCP_STATE_NAMES,
    bytes_to_ip,
)

#: Kernel pool records are 64-byte aligned in the simulated guests.
_POOL_ALIGN = 64
_MAX_PID = 1 << 20


def _require_windows(dump):
    if dump.os_name != "windows":
        raise ForensicsError("plugin requires a Windows memory dump")


def _eprocess_row(record, source_va):
    return {
        "pid": record["pid"],
        "ppid": record["ppid"],
        "name": cstring(record["image_name"]),
        "create_time": record["create_time"],
        "exit_time": record["exit_time"],
        "eprocess_va": source_va,
        "handle_table": record["handle_table"],
    }


@plugin("pslist")
def pslist(dump):
    """Walk PsActiveProcessHead — the canonical (linkable) process view."""
    _require_windows(dump)
    head_va = dump.lookup_symbol("PsActiveProcessHead")
    head = LIST_HEAD.decode(dump.read(kernel_pa(head_va), LIST_HEAD.size))
    rows = []
    current = head["next"]
    seen = set()
    while current != head_va:
        if current in seen or current == 0:
            raise ForensicsError("corrupt EPROCESS list in dump")
        seen.add(current)
        record = EPROCESS.decode(dump.read(kernel_pa(current), EPROCESS.size))
        rows.append(_eprocess_row(record, current))
        current = record["links_next"]
    return rows


@plugin("psscan", pool_scan=True)
def psscan(dump):
    """Pool-scan for 'Proc' tags — finds unlinked and exited processes."""
    _require_windows(dump)
    rows = []
    image = dump.image
    offset = image.find(POOL_TAG_PROCESS)
    while offset != -1:
        if offset % _POOL_ALIGN == 0 and offset + EPROCESS.size <= len(image):
            record = EPROCESS.decode(image, offset)
            if record["pid"] < _MAX_PID and record["ppid"] < _MAX_PID:
                rows.append(_eprocess_row(record, kernel_va(offset)))
        offset = image.find(POOL_TAG_PROCESS, offset + 1)
    return rows


@plugin("psxview", pool_scan=True)
def psxview(dump):
    """Cross-view pslist × psscan; rows missing from pslist are suspicious."""
    listed = {row["eprocess_va"]: row for row in pslist(dump)}
    rows = []
    for row in psscan(dump):
        in_pslist = row["eprocess_va"] in listed
        exited = row["exit_time"] != 0
        rows.append(
            {
                **row,
                "in_pslist": in_pslist,
                "in_psscan": True,
                "suspicious": not in_pslist and not exited,
            }
        )
    return rows


@plugin("netscan", pool_scan=True)
def netscan(dump):
    """Pool-scan for TCP endpoints ('TcpE' tags)."""
    _require_windows(dump)
    rows = []
    image = dump.image
    offset = image.find(POOL_TAG_TCP)
    while offset != -1:
        if offset % _POOL_ALIGN == 0 and offset + TCP_ENDPOINT.size <= len(image):
            record = TCP_ENDPOINT.decode(image, offset)
            if record["owner_pid"] < _MAX_PID:
                rows.append(
                    {
                        "protocol": "TCPv4",
                        "owner_pid": record["owner_pid"],
                        "local": "%s:%d"
                        % (bytes_to_ip(record["local_ip"]), record["local_port"]),
                        "remote": "%s:%d"
                        % (bytes_to_ip(record["remote_ip"]), record["remote_port"]),
                        "state": TCP_STATE_NAMES.get(
                            record["state"], "UNKNOWN(%d)" % record["state"]
                        ),
                    }
                )
        offset = image.find(POOL_TAG_TCP, offset + 1)
    return rows


@plugin("handles")
def handles(dump, pid=None):
    """Open file handles, per process (optionally filtered to one pid)."""
    _require_windows(dump)
    rows = []
    for process in pslist(dump):
        if pid is not None and process["pid"] != pid:
            continue
        table_pa = kernel_pa(process["handle_table"])
        header = HANDLE_TABLE.decode(dump.read(table_pa, HANDLE_TABLE.size))
        if header["magic"] != HANDLE_TABLE_MAGIC:
            raise ForensicsError(
                "corrupt handle table for pid %d" % process["pid"]
            )
        if header["count"] > 4096:
            raise ForensicsError(
                "implausible handle count %d for pid %d"
                % (header["count"], process["pid"])
            )
        for index in range(header["count"]):
            file_va = struct.unpack(
                "<Q", dump.read(table_pa + HANDLE_TABLE.size + index * 8, 8)
            )[0]
            record = FILE_OBJECT.decode(
                dump.read(kernel_pa(file_va), FILE_OBJECT.size)
            )
            if record["pool_tag"] != POOL_TAG_FILE:
                raise ForensicsError("handle %d of pid %d is not a File object"
                                     % (index, process["pid"]))
            rows.append(
                {
                    "pid": process["pid"],
                    "process": process["name"],
                    "handle": index,
                    "path": cstring(record["name"]),
                }
            )
    return rows


@plugin("filescan", pool_scan=True)
def filescan(dump):
    """Pool-scan for File objects — finds files whose handles were
    closed or whose owning process was unlinked (complements handles)."""
    _require_windows(dump)
    rows = []
    image = dump.image
    offset = image.find(POOL_TAG_FILE)
    while offset != -1:
        if offset % _POOL_ALIGN == 0 and \
                offset + FILE_OBJECT.size <= len(image):
            record = FILE_OBJECT.decode(image, offset)
            if record["owner_pid"] < _MAX_PID:
                path = cstring(record["name"])
                if path:
                    rows.append(
                        {
                            "owner_pid": record["owner_pid"],
                            "path": path,
                            "file_va": kernel_va(offset),
                        }
                    )
        offset = image.find(POOL_TAG_FILE, offset + 1)
    return rows


@plugin("pstree")
def pstree(dump):
    """Render the process hierarchy from ppid links."""
    rows = pslist(dump)
    children = {}
    for row in rows:
        children.setdefault(row["ppid"], []).append(row)
    by_pid = {row["pid"]: row for row in rows}
    lines = []

    def visit(row, depth):
        lines.append(
            {"pid": row["pid"], "ppid": row["ppid"],
             "name": row["name"], "depth": depth,
             "display": "%s%s" % ("  " * depth, row["name"])}
        )
        for child in children.get(row["pid"], []):
            visit(child, depth + 1)

    for row in rows:
        if row["ppid"] not in by_pid or row["ppid"] == row["pid"]:
            visit(row, 0)
    return lines


@plugin("printkey", pool_scan=True)
def printkey(dump, prefix=None):
    """Enumerate registry keys from hive records in the kernel pool.

    With ``prefix``, only keys under that registry path are returned —
    the §5.6 analyst's view of what the malware could have harvested.
    """
    _require_windows(dump)
    from repro.guest.windows import POOL_TAG_REGISTRY, REGISTRY_KEY

    rows = []
    image = dump.image
    offset = image.find(POOL_TAG_REGISTRY)
    while offset != -1:
        if offset % _POOL_ALIGN == 0 and \
                offset + REGISTRY_KEY.size <= len(image):
            record = REGISTRY_KEY.decode(image, offset)
            key = cstring(record["name"])
            if key and (prefix is None or key.startswith(prefix)):
                rows.append({"key": key, "value": cstring(record["value"])})
        offset = image.find(POOL_TAG_REGISTRY, offset + 1)
    return rows


@plugin("procdump")
def procdump(dump, pid):
    """Extract a process's kernel object (our stand-in for the executable).

    The simulated Windows guest has no user-space text segment, so the
    extracted artifact is the raw EPROCESS record plus its metadata — the
    control-plane equivalent of Volatility pulling the PE image for
    sandboxed analysis.
    """
    for row in psscan(dump):
        if row["pid"] == pid:
            raw = dump.read(kernel_pa(row["eprocess_va"]), EPROCESS.size)
            return [
                {
                    "pid": pid,
                    "name": row["name"],
                    "create_time": row["create_time"],
                    "artifact_bytes": raw,
                    "artifact_size": len(raw),
                }
            ]
    raise ForensicsError("procdump: no process with pid %d in dump" % pid)
