"""OS-agnostic forensics plugins."""

import re

from repro.forensics.volatility import plugin


@plugin("yarascan", pool_scan=True)
def yarascan(dump, pattern, context_bytes=32):
    """Regex sweep over the whole physical image (Volatility's yarascan).

    ``pattern`` is a bytes regex (or a compiled one). Returns one row per
    match with the physical offset and surrounding context.
    """
    if isinstance(pattern, (bytes, str)):
        if isinstance(pattern, str):
            pattern = pattern.encode("utf-8")
        pattern = re.compile(pattern)
    rows = []
    for match in pattern.finditer(dump.image):
        start = match.start()
        rows.append(
            {
                "paddr": start,
                "match": match.group(0)[:64],
                "context": dump.image[
                    max(start - context_bytes, 0) : start + context_bytes
                ],
            }
        )
        if len(rows) >= 1000:
            break  # cap runaway patterns
    return rows


@plugin("memdiff", pool_scan=True)
def memdiff(dump, against, granularity=4096):
    """Page-granular diff of two images (the §3.3 'determine the
    differences between the two dumps' primitive).

    ``against`` is another MemoryDump of the same size. Returns one row
    per differing page.
    """
    if against.size != dump.size:
        from repro.errors import ForensicsError

        raise ForensicsError("memdiff requires same-size images")
    rows = []
    for offset in range(0, dump.size, granularity):
        a = dump.image[offset : offset + granularity]
        b = against.image[offset : offset + granularity]
        if a != b:
            first = next(index for index in range(len(a))
                         if a[index] != b[index])
            rows.append(
                {
                    "paddr": offset,
                    "first_difference": offset + first,
                    "pfn": offset // granularity,
                }
            )
    return rows
