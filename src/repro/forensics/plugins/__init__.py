"""Volatility-style plugins.

Windows: ``pslist``, ``psscan``, ``psxview``, ``netscan``, ``handles``,
``procdump``.

Linux: ``linux_pslist``, ``linux_psscan``, ``linux_pidhashtable``,
``linux_psxview``, ``linux_lsmod``, ``linux_check_syscall``,
``linux_proc_maps``, ``linux_dump_map``.
"""
