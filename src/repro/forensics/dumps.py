"""Memory dumps: immutable full-RAM images with translation metadata.

A dump carries everything an offline analyzer legitimately has: the raw
bytes, the guest's System.map symbols, the OS name, and the page-table
contents needed to translate user-space addresses (a real tool would walk
the page tables *inside* the image; we persist the same mapping data
explicitly).
"""

from repro.errors import ForensicsError, PageFault
from repro.guest.memory import PAGE_SIZE
from repro.guest.pagetable import KERNEL_BASE, kernel_pa


class MemoryDump:
    """One captured RAM image plus the metadata needed to interpret it."""

    def __init__(self, image, os_name, symbols, guest_state, taken_at=0.0,
                 label=""):
        # bytes() is the single defensive copy that makes the dump
        # immutable; passing ``bytes`` (no copy) or a zero-copy
        # ``memoryview``/``bytearray`` (one bulk copy, never per-frame)
        # are both fine.
        self.image = bytes(image)
        self.os_name = os_name
        self.symbols = dict(symbols)
        self.guest_state = guest_state
        self.taken_at = taken_at
        self.label = label

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_vm(cls, vm, label="live"):
        """Capture the VM's current state (the 'bad' end-of-epoch dump)."""
        return cls(
            image=vm.memory.snapshot_bytes(),
            os_name=vm.os_name,
            symbols={name: vm.symbols.lookup(name) for name in vm.symbols.names()},
            guest_state=vm.state_dict(),
            taken_at=vm.clock.now,
            label=label,
        )

    @classmethod
    def from_snapshot(cls, vm, snapshot, label="checkpoint"):
        """Wrap a :class:`GuestSnapshot` (e.g. the clean backup) as a dump."""
        return cls(
            image=snapshot.memory_image,
            os_name=vm.os_name,
            symbols={name: vm.symbols.lookup(name) for name in vm.symbols.names()},
            guest_state=snapshot.state,
            taken_at=snapshot.taken_at,
            label=label,
        )

    # -- reading ----------------------------------------------------------

    @property
    def size(self):
        return len(self.image)

    def read(self, paddr, length):
        if paddr < 0 or paddr + length > len(self.image):
            raise ForensicsError(
                "dump read [0x%x, +%d) outside %d-byte image"
                % (paddr, length, len(self.image))
            )
        return self.image[paddr : paddr + length]

    def lookup_symbol(self, name):
        try:
            return self.symbols[name]
        except KeyError:
            raise ForensicsError("symbol %r not in dump" % name) from None

    def _user_page_table(self, pid):
        os_state = self.guest_state.get(self.os_name, {})
        processes = os_state.get("processes", {})
        process = processes.get(pid)
        if process is None:
            raise ForensicsError("dump has no page table for pid %d" % pid)
        return process["page_table"]["entries"]

    def translate(self, vaddr, pid=0):
        """VA -> PA inside the dump (kernel direct map or user page table)."""
        if pid == 0 or vaddr >= KERNEL_BASE:
            return kernel_pa(vaddr)
        entries = self._user_page_table(pid)
        vpn, offset = divmod(vaddr, PAGE_SIZE)
        entry = entries.get(vpn)
        if entry is None:
            raise PageFault(vaddr)
        return entry[0] * PAGE_SIZE + offset

    def read_va(self, vaddr, length, pid=0):
        """Read a virtual range, stitching across non-contiguous frames."""
        parts = []
        offset = 0
        while offset < length:
            paddr = self.translate(vaddr + offset, pid)
            room = PAGE_SIZE - (paddr % PAGE_SIZE)
            chunk = min(room, length - offset)
            parts.append(self.read(paddr, chunk))
            offset += chunk
        return b"".join(parts)

    def process_pids(self):
        """Pids whose user address spaces this dump can translate."""
        os_state = self.guest_state.get(self.os_name, {})
        return sorted(os_state.get("processes", {}))

    def __repr__(self):
        return "MemoryDump(label=%r, %d MiB, t=%.2fms)" % (
            self.label,
            len(self.image) // (1024 * 1024),
            self.taken_at,
        )


def diff_rows(before, after, key):
    """Diff two lists of dict rows by ``key(row)``: (added, removed).

    The §5.6 post-mortem compares plugin output on the checkpoint-start
    and checkpoint-end dumps; what's *added* is what the attack did.
    """
    before_keys = {key(row) for row in before}
    after_keys = {key(row) for row in after}
    added = [row for row in after if key(row) not in before_keys]
    removed = [row for row in before if key(row) not in after_keys]
    return added, removed
