"""Volatility-style memory forensics over captured dumps (§3.3, §5.5-5.6).

Unlike ``repro.vmi`` (live introspection, cheap, used every epoch), this
package analyzes *memory dumps* — full RAM images captured from the
primary VM, the backup checkpoint, or the replay point — with a plugin
battery (pslist/psscan/psxview/netscan/handles/...). It is deliberately
priced like Volatility: ~2.5 s initialization and ~500 ms per scan, which
is why CRIMES only invokes it after an attack is detected.
"""

from repro.forensics.dumps import MemoryDump, diff_rows
from repro.forensics.volatility import VolatilityFramework

__all__ = ["MemoryDump", "diff_rows", "VolatilityFramework"]
