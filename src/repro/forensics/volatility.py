"""The Volatility-style framework: plugin registry + cost accounting.

Plugins are functions ``plugin(dump, **options) -> list[dict]`` registered
under their Volatility-like names (``pslist``, ``psscan``, ``netscan``,
``linux_psxview``, ...). The framework charges virtual time per §5.3's
measurements: ≈2.5 s one-time initialization, ≈500 ms per scan — far too
slow for every epoch, which is exactly why CRIMES uses LibVMI for the hot
path and Volatility only post-detection.
"""

from repro.errors import ForensicsError
from repro.sim.rng import SeededStream

#: One-time framework initialization (profile load, image parse).
INIT_MS = 2500.0
#: Baseline cost of one plugin run.
PLUGIN_RUN_MS = 500.0
#: Extra cost per MiB of image swept by pool-scanning plugins.
POOL_SCAN_PER_MIB_MS = 12.0

_REGISTRY = {}


def plugin(name, pool_scan=False):
    """Register a forensics plugin under its Volatility name."""

    def decorator(func):
        func.plugin_name = name
        func.pool_scan = pool_scan
        _REGISTRY[name] = func
        return func

    return decorator


def registered_plugins():
    return sorted(_REGISTRY)


class VolatilityFramework:
    """Runs registered plugins over memory dumps, charging virtual time."""

    def __init__(self, seed=0):
        self._jitter = SeededStream(seed, "volatility")
        self._cost_ms = INIT_MS
        self.init_cost_ms = INIT_MS
        self.runs = 0

    def take_cost_ms(self):
        cost, self._cost_ms = self._cost_ms, 0.0
        return cost

    def run(self, plugin_name, dump, **options):
        """Run one plugin against a dump; returns its row list."""
        func = _REGISTRY.get(plugin_name)
        if func is None:
            raise ForensicsError(
                "unknown plugin %r (known: %s)"
                % (plugin_name, ", ".join(registered_plugins()))
            )
        cost = PLUGIN_RUN_MS
        if func.pool_scan:
            cost += POOL_SCAN_PER_MIB_MS * (dump.size / float(1 << 20))
        self._cost_ms += self._jitter.jitter(cost, 0.05)
        self.runs += 1
        return func(dump, **options)


# Importing the plugin modules populates the registry.
from repro.forensics.plugins import common as _common_plugins  # noqa: E402,F401
from repro.forensics.plugins import linux as _linux_plugins  # noqa: E402,F401
from repro.forensics.plugins import windows as _windows_plugins  # noqa: E402,F401
