"""Deterministic random-number streams.

Each component derives an independent stream from a root seed and a label,
so adding randomness to one component never perturbs another — a standard
trick for reproducible distributed-systems simulation.
"""

import hashlib
import random


def derive_seed(root_seed, label):
    """Derive a stable 64-bit seed from ``root_seed`` and a string label."""
    digest = hashlib.sha256(
        ("%d/%s" % (root_seed, label)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little")


class SeededStream:
    """A labelled, independently seeded wrapper around :class:`random.Random`."""

    def __init__(self, root_seed, label):
        self.label = label
        self._rng = random.Random(derive_seed(root_seed, label))

    def uniform(self, lo, hi):
        return self._rng.uniform(lo, hi)

    def expovariate(self, rate):
        return self._rng.expovariate(rate)

    def gauss(self, mu, sigma):
        return self._rng.gauss(mu, sigma)

    def randint(self, lo, hi):
        return self._rng.randint(lo, hi)

    def randbytes(self, n):
        return bytes(self._rng.getrandbits(8) for _ in range(n))

    def choice(self, seq):
        return self._rng.choice(seq)

    def sample(self, population, k):
        """``k`` distinct elements of ``population`` (no replacement)."""
        return self._rng.sample(population, k)

    def shuffle(self, seq):
        self._rng.shuffle(seq)

    def random(self):
        return self._rng.random()

    def jitter(self, value, fraction):
        """Return ``value`` perturbed by up to ±``fraction`` of itself."""
        if fraction <= 0:
            return value
        return value * self._rng.uniform(1.0 - fraction, 1.0 + fraction)
