"""Fast deep-cloning of plain-data state dicts.

``copy.deepcopy`` dominates the epoch loop's host time: its recursive
memo-dict walk costs ~10x a pickle round-trip for the plain-data state
dicts the guest and workloads expose. Snapshot paths therefore *freeze*
state to a pickle blob (one ``dumps``), keep the blob, and *thaw* it back
into a fresh object only when a consumer actually needs one — rollback,
forensics, or the delta history. A freeze+thaw pair (:func:`clone_state`)
is still several times cheaper than one deepcopy.

State dicts that refuse to pickle (a test double holding an open handle,
say) silently fall back to ``deepcopy`` so the contract stays "any state
deepcopy accepted before is still accepted".
"""

import copy
import pickle

_PROTOCOL = pickle.HIGHEST_PROTOCOL


def freeze_state(state):
    """Snapshot ``state`` into an opaque frozen form (cheap, immutable)."""
    try:
        return pickle.dumps(state, _PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError):
        return state if state is None else copy.deepcopy(state)


def thaw_state(frozen):
    """Materialize a fresh, independently mutable object from a freeze."""
    if isinstance(frozen, (bytes, bytearray)):
        return pickle.loads(frozen)
    return frozen if frozen is None else copy.deepcopy(frozen)


def clone_state(state):
    """Deep-clone ``state`` (pickle round-trip, deepcopy fallback)."""
    return thaw_state(freeze_state(state))
