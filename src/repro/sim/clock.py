"""Virtual time source.

Time is kept in float milliseconds. A dedicated class (rather than a bare
float) gives a single authority over advancement, guards against backwards
movement, and lets components share one clock by reference.
"""

from repro.errors import SimulationError


class VirtualClock:
    """A monotonically non-decreasing clock measured in milliseconds."""

    def __init__(self, start_ms=0.0):
        self._now = float(start_ms)

    @property
    def now(self):
        """Current virtual time in milliseconds."""
        return self._now

    def advance(self, delta_ms):
        """Move the clock forward by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise SimulationError("cannot advance clock by %r ms" % delta_ms)
        self._now += delta_ms
        return self._now

    def advance_to(self, when_ms):
        """Move the clock forward to the absolute time ``when_ms``."""
        if when_ms < self._now - 1e-9:
            raise SimulationError(
                "cannot move clock backwards: now=%.6f target=%.6f"
                % (self._now, when_ms)
            )
        self._now = max(self._now, float(when_ms))
        return self._now

    def __repr__(self):
        return "VirtualClock(now=%.6fms)" % self._now
