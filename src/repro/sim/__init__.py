"""Deterministic discrete-event simulation kernel.

Everything in this reproduction runs on *virtual* time: the engine here
provides a monotonically advancing clock, an event queue, and lightweight
coroutine processes. All milliseconds reported by benchmarks are simulated
milliseconds, which makes every experiment deterministic for a given seed.
"""

from repro.sim.clock import VirtualClock
from repro.sim.engine import Engine, Event, Process, Timeout, Waiter
from repro.sim.rng import SeededStream, derive_seed

__all__ = [
    "VirtualClock",
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "Waiter",
    "SeededStream",
    "derive_seed",
]
