"""A small coroutine-based discrete-event engine.

Processes are generator functions that ``yield`` *awaitables*:

* :class:`Timeout` — resume after a virtual delay,
* :class:`Event` — resume when another process triggers the event.

The web-server experiment (Figure 7) is the main client of this engine;
the epoch loop itself is sequential and simply advances the shared clock.
"""

import heapq
import itertools

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


class Timeout:
    """Awaitable: resume the yielding process after ``delay_ms``."""

    def __init__(self, delay_ms):
        if delay_ms < 0:
            raise SimulationError("negative timeout: %r" % delay_ms)
        self.delay_ms = float(delay_ms)


class Event:
    """A one-shot broadcast event processes can wait on.

    ``trigger(value)`` wakes every waiter; late waiters resume immediately
    with the stored value.
    """

    def __init__(self, engine):
        self._engine = engine
        self._triggered = False
        self._value = None
        self._waiters = []

    @property
    def triggered(self):
        return self._triggered

    @property
    def value(self):
        return self._value

    def trigger(self, value=None):
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._engine._schedule(0.0, process, value)

    def _add_waiter(self, process):
        if self._triggered:
            self._engine._schedule(0.0, process, self._value)
        else:
            self._waiters.append(process)


class Waiter:
    """Awaitable handle for the completion of another process."""

    def __init__(self, process):
        self.process = process


class Process:
    """A running generator coroutine inside the engine."""

    def __init__(self, engine, generator, name):
        self._engine = engine
        self._generator = generator
        self.name = name
        self.finished = False
        self.result = None
        self._completion_waiters = []

    def _step(self, send_value):
        if self.finished:
            return
        try:
            awaited = self._generator.send(send_value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        if isinstance(awaited, Timeout):
            self._engine._schedule(awaited.delay_ms, self, None)
        elif isinstance(awaited, Event):
            awaited._add_waiter(self)
        elif isinstance(awaited, Waiter):
            awaited.process._add_completion_waiter(self)
        elif isinstance(awaited, Process):
            awaited._add_completion_waiter(self)
        else:
            raise SimulationError(
                "process %r yielded unsupported awaitable %r" % (self.name, awaited)
            )

    def _finish(self, result):
        self.finished = True
        self.result = result
        waiters, self._completion_waiters = self._completion_waiters, []
        for process in waiters:
            self._engine._schedule(0.0, process, result)

    def _add_completion_waiter(self, process):
        if self.finished:
            self._engine._schedule(0.0, process, self.result)
        else:
            self._completion_waiters.append(process)


class Engine:
    """Run processes over a shared :class:`VirtualClock`."""

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else VirtualClock()
        self._queue = []
        self._sequence = itertools.count()
        self._active = 0

    def now(self):
        return self.clock.now

    def event(self):
        """Create a new one-shot :class:`Event` bound to this engine."""
        return Event(self)

    def spawn(self, generator, name="process"):
        """Register a generator coroutine and start it at the current time."""
        process = Process(self, generator, name)
        self._schedule(0.0, process, None)
        return process

    def _schedule(self, delay_ms, process, send_value):
        when = self.clock.now + delay_ms
        heapq.heappush(self._queue, (when, next(self._sequence), process, send_value))

    def run(self, until_ms=None):
        """Run queued work; stop when drained or when the clock passes ``until_ms``."""
        while self._queue:
            when, _seq, process, send_value = self._queue[0]
            if until_ms is not None and when > until_ms:
                break
            heapq.heappop(self._queue)
            self.clock.advance_to(when)
            process._step(send_value)
        if until_ms is not None:
            self.clock.advance_to(max(self.clock.now, until_ms))
        return self.clock.now

    def pending(self):
        """Number of scheduled wake-ups not yet delivered."""
        return len(self._queue)
