"""Guest programs: benchmarks, servers, and attacks.

A :class:`~repro.workloads.base.GuestProgram` is code "running inside" a
guest VM, driven once per epoch by the CRIMES loop. Bulk benchmarks
(PARSEC) report a synthetic dirty-page count from their calibrated
profiles; attack programs perform *real* stores into guest memory so the
evidence the detectors look for is physically present.
"""

from repro.workloads.base import GuestProgram
from repro.workloads.kvstore import DataTheftProgram, KeyValueStoreProgram
from repro.workloads.parsec import PARSEC_PROFILES, ParsecWorkload, parsec_names
from repro.workloads.webserver import (
    WebServerExperiment,
    WebServerWorkload,
    WEB_LOAD_LEVELS,
)
from repro.workloads.attacks import (
    MalwareProgram,
    MemoryResidentMalware,
    OverflowAttackProgram,
    RootkitProgram,
    StackSmashProgram,
    UseAfterFreeProgram,
)

__all__ = [
    "GuestProgram",
    "DataTheftProgram",
    "KeyValueStoreProgram",
    "PARSEC_PROFILES",
    "ParsecWorkload",
    "parsec_names",
    "WebServerExperiment",
    "WebServerWorkload",
    "WEB_LOAD_LEVELS",
    "MalwareProgram",
    "MemoryResidentMalware",
    "OverflowAttackProgram",
    "RootkitProgram",
    "StackSmashProgram",
    "UseAfterFreeProgram",
]
