"""PARSEC 3.0 workload profiles (Table 2) as synthetic guest programs.

Each benchmark is characterized by the two properties that determine its
behaviour under continuous checkpointing:

* ``d200`` — unique pages dirtied in a 200 ms epoch (the quantity Figure 5c
  plots). fluidanimate's rate is far above the rest, which is why it is
  the paper's worst case (§5.2: its dirty-page count is ≈5× benchmarks
  like raytrace; unoptimized Remus reaches ≈4.7× native runtime on it).
* ``tau_ms`` — the re-dirtying time constant: unique pages dirtied in an
  interval t follow ``W * (1 - exp(-t / tau))``, saturating at the write
  working set W. This reproduces Figure 5c's growth-with-interval shape.

``asan_slowdown`` is the benchmark's AddressSanitizer runtime factor, used
by the AS bars of Figure 3.
"""

import math

from repro.sim.rng import SeededStream
from repro.workloads.base import GuestProgram


class ParsecProfile:
    """Calibrated per-benchmark constants."""

    __slots__ = ("name", "description", "d200", "tau_ms", "asan_slowdown",
                 "native_runtime_ms")

    def __init__(self, name, description, d200, tau_ms, asan_slowdown,
                 native_runtime_ms=10000.0):
        self.name = name
        self.description = description
        self.d200 = d200
        self.tau_ms = tau_ms
        self.asan_slowdown = asan_slowdown
        self.native_runtime_ms = native_runtime_ms

    def working_set_pages(self):
        return self.d200 / (1.0 - math.exp(-200.0 / self.tau_ms))

    def dirty_pages(self, interval_ms):
        """Expected unique pages dirtied in one epoch of ``interval_ms``."""
        return self.working_set_pages() * (
            1.0 - math.exp(-interval_ms / self.tau_ms)
        )


#: Table 2's suite, with dirty profiles fit to Figures 3-6 (see DESIGN.md).
PARSEC_PROFILES = {
    profile.name: profile
    for profile in (
        ParsecProfile(
            "blackscholes", "Uses PDE to calculate portfolio prices",
            d200=2500, tau_ms=140, asan_slowdown=1.45,
        ),
        ParsecProfile(
            "swaptions", "Use HJM framework and Monte Carlo simulations",
            d200=2000, tau_ms=150, asan_slowdown=1.50,
        ),
        ParsecProfile(
            "vips", "Perform affine transformations and convolutions",
            d200=6000, tau_ms=110, asan_slowdown=1.55,
        ),
        ParsecProfile(
            "radiosity", "Compute the equilibrium distribution of light",
            d200=3500, tau_ms=130, asan_slowdown=1.60,
        ),
        ParsecProfile(
            "raytrace", "Simulate real-time raytracing for animations",
            d200=1200, tau_ms=160, asan_slowdown=1.40,
        ),
        ParsecProfile(
            "volrend", "Renders a 3D volume onto a 2D image plane",
            d200=2800, tau_ms=140, asan_slowdown=1.35,
        ),
        ParsecProfile(
            "bodytrack", "Body tracking of a person",
            d200=5000, tau_ms=120, asan_slowdown=1.55,
        ),
        ParsecProfile(
            "fluidanimate", "Simulate incompressible fluid for animations",
            d200=52000, tau_ms=100, asan_slowdown=2.60,
        ),
        ParsecProfile(
            "freqmine", "Frequent itemset mining",
            d200=7000, tau_ms=130, asan_slowdown=1.60,
        ),
        ParsecProfile(
            "water-spatial", "Spatial molecular dynamics N-body problem",
            d200=2200, tau_ms=150, asan_slowdown=1.40,
        ),
        ParsecProfile(
            "water-nsquared", "Solves molecular dynamics N-body problem",
            d200=3000, tau_ms=150, asan_slowdown=1.50,
        ),
    )
}


def parsec_names():
    """Suite order as plotted in Figure 3."""
    return [
        "blackscholes", "swaptions", "vips", "radiosity", "raytrace",
        "volrend", "bodytrack", "fluidanimate", "freqmine",
        "water-spatial", "water-nsquared",
    ]


class ParsecWorkload(GuestProgram):
    """One PARSEC benchmark running to completion inside a guest.

    Reports its per-epoch dirty pages synthetically (from the calibrated
    profile) and tracks completed work; the benchmark finishes once it has
    accumulated ``native_runtime_ms`` of actual compute, so total virtual
    wall-clock divided by native runtime is the normalized runtime of
    Figure 3.
    """

    def __init__(self, benchmark, seed=0, native_runtime_ms=None,
                 jitter=0.05):
        super().__init__()
        profile = PARSEC_PROFILES.get(benchmark)
        if profile is None:
            raise KeyError(
                "unknown PARSEC benchmark %r (known: %s)"
                % (benchmark, ", ".join(sorted(PARSEC_PROFILES)))
            )
        self.name = "parsec/%s" % benchmark
        self.profile = profile
        self.native_runtime_ms = (
            native_runtime_ms
            if native_runtime_ms is not None
            else profile.native_runtime_ms
        )
        self.jitter = jitter
        self._rng = SeededStream(seed, self.name)
        self._work_done_ms = 0.0
        self._epochs = 0

    def step(self, start_ms, interval_ms):
        self._require_bound()
        if self.finished:
            return {"synthetic_dirty": 0}
        self._epochs += 1
        expected = self.profile.dirty_pages(interval_ms)
        return {"synthetic_dirty": int(self._rng.jitter(expected, self.jitter))}

    def on_epoch_end(self, record):
        self._work_done_ms += record.work_done_ms

    @property
    def finished(self):
        return self._work_done_ms >= self.native_runtime_ms

    @property
    def work_done_ms(self):
        return self._work_done_ms

    def state_dict(self):
        return {"work_done_ms": self._work_done_ms, "epochs": self._epochs}

    def load_state_dict(self, state):
        self._work_done_ms = state["work_done_ms"]
        self._epochs = state["epochs"]
