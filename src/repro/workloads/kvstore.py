"""A key-value store guest workload (the intro's motivating target).

§1: "Cloud applications are storing ever increasing volumes of data —
data that is often of high value to attackers who wish to steal company
secrets or personal information." This workload is that application: a
small record store whose values live in guest heap memory and persist to
the guest disk, serving get/put traffic over the NIC.

:class:`DataTheftProgram` is the corresponding attack: once triggered it
reads every record straight out of the store's memory and streams them
to an aggregation server — the exact exfiltration Synchronous Safety
nullifies.
"""

import struct

from repro.guest.devices import Packet
from repro.sim.rng import SeededStream
from repro.workloads.base import GuestProgram

_RECORD_SIZE = 96
_VALUE_SIZE = 64


class KeyValueStoreProgram(GuestProgram):
    """An in-guest record store with disk persistence and query traffic."""

    name = "kvstore"

    def __init__(self, records_per_epoch=4, queries_per_epoch=8,
                 disk_block_base=0x100, seed=0):
        super().__init__()
        self.records_per_epoch = records_per_epoch
        self.queries_per_epoch = queries_per_epoch
        self.disk_block_base = disk_block_base
        self._rng = SeededStream(seed, "kvstore")
        self._epoch = 0
        self._pid = None
        self._index = {}  # key -> value vaddr

    def bind(self, vm):
        super().bind(vm)
        process = vm.create_process("kvstored", heap_pages=64,
                                    canary_capacity=4096)
        self._pid = process.pid
        # Seed data: the secrets an attacker wants.
        for key, value in (
            ("user:1:card", "4111-1111-1111-1111"),
            ("user:1:ssn", "078-05-1120"),
            ("api:payments:key", "sk_live_51J9x7wqz"),
        ):
            self.put(key, value)

    @property
    def process(self):
        return self.vm.processes[self._pid]

    # -- store operations (real guest memory + disk) ------------------------

    def put(self, key, value):
        """Insert/overwrite a record; persists to disk as well."""
        process = self.process
        encoded = value.encode("utf-8")[:_VALUE_SIZE]
        if key in self._index:
            vaddr = self._index[key]
        else:
            vaddr = process.malloc(_RECORD_SIZE)
            self._index[key] = vaddr
        record = key.encode("utf-8")[:30].ljust(32, b"\x00") + \
            encoded.ljust(_VALUE_SIZE, b"\x00")
        process.write(vaddr, record)
        block = self.disk_block_base + (len(self._index) - 1) % 256
        self.vm.disk.write(block, record)
        return vaddr

    def get(self, key):
        vaddr = self._index.get(key)
        if vaddr is None:
            return None
        raw = self.process.read(vaddr, _RECORD_SIZE)
        return raw[32:].split(b"\x00", 1)[0].decode("utf-8")

    def keys(self):
        return sorted(self._index)

    def record_addresses(self):
        """(key, vaddr) pairs — what an in-guest attacker can learn."""
        return sorted(self._index.items())

    # -- epoch behaviour ------------------------------------------------------

    def step(self, start_ms, interval_ms):
        self._require_bound()
        self._epoch += 1
        for serial in range(self.records_per_epoch):
            self.put(
                "epoch:%d:rec:%d" % (self._epoch, serial),
                "payload-%06d" % self._rng.randint(0, 999999),
            )
        # Serve queries over ordinary (non-secret) records only; the
        # seeded secrets are internal state a well-behaved server never
        # puts on the wire verbatim.
        servable = [key for key in self.keys() if key.startswith("epoch:")]
        for _ in range(self.queries_per_epoch):
            key = self._rng.choice(servable)
            value = self.get(key)
            self.vm.nic.send(
                Packet(
                    "10.0.0.20:6379",
                    "10.0.0.30:%d" % self._rng.randint(40000, 60000),
                    b"VALUE %s %s" % (key.encode(), value.encode()),
                )
            )
        return {"synthetic_dirty": 0}

    def state_dict(self):
        return {"epoch": self._epoch, "pid": self._pid,
                "index": dict(self._index)}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._pid = state["pid"]
        self._index = dict(state["index"])


class DataTheftProgram(GuestProgram):
    """Bulk exfiltration of a :class:`KeyValueStoreProgram`'s records."""

    name = "data-theft"

    C2_ENDPOINT = ("198.51.100.99", 443)

    def __init__(self, store, trigger_epoch=3):
        super().__init__()
        self.store = store
        self.trigger_epoch = trigger_epoch
        self._epoch = 0
        self._exfiltrated = False

    def step(self, start_ms, interval_ms):
        self._require_bound()
        self._epoch += 1
        if self._epoch != self.trigger_epoch or self._exfiltrated:
            return {"synthetic_dirty": 0}
        # Read every record straight out of the store's heap.
        process = self.store.process
        loot = []
        for key, vaddr in self.store.record_addresses():
            raw = process.read(vaddr, _RECORD_SIZE)
            loot.append(b"%s=%s" % (key.encode(),
                                    raw[32:].split(b"\x00", 1)[0]))
        self.vm.open_socket(
            self.store.process.pid,
            ("10.0.0.20", 4444),
            self.C2_ENDPOINT,
        )
        self.vm.nic.send(
            Packet(
                "10.0.0.20:4444",
                "%s:%d" % self.C2_ENDPOINT,
                b"BEGIN_DUMP\n" + b"\n".join(loot),
            )
        )
        self._exfiltrated = True
        return {"synthetic_dirty": 0}

    @property
    def exfiltrated(self):
        return self._exfiltrated

    def state_dict(self):
        return {"epoch": self._epoch, "exfiltrated": self._exfiltrated}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._exfiltrated = state["exfiltrated"]
