"""Attack programs: the exploits the case studies detect.

Each attack performs *real* operations against the simulated guest —
out-of-bounds stores, kernel-structure mutation, process/socket/file
creation — so the evidence the Detector modules and forensics plugins look
for is physically present in guest memory.
"""

from repro.guest.windows import TCP_CLOSE_WAIT
from repro.workloads.base import GuestProgram

#: Synthetic instruction addresses, so replay can report "the exact
#: instruction which caused the buffer overflow" (§5.5).
BENIGN_WRITE_RIP = 0x0000000000401200
OVERFLOW_RIP = 0x000000000040BAD0


class OverflowAttackProgram(GuestProgram):
    """A C program with a heap overflow (§5.5's case study).

    Runs benign allocate/write/free cycles each epoch; on the trigger
    epoch, a ``memcpy``-style store writes ``overflow_bytes`` past the end
    of a fresh allocation, clobbering the canary the guest's malloc
    wrapper placed there.
    """

    name = "overflow-attack"

    def __init__(self, process_name="victimd", trigger_epoch=3,
                 buffer_size=100, overflow_bytes=8,
                 attack_offset_fraction=0.5, exfil_after_attack=True):
        super().__init__()
        self.process_name = process_name
        self.trigger_epoch = trigger_epoch
        self.buffer_size = buffer_size
        self.overflow_bytes = overflow_bytes
        self.attack_offset_fraction = attack_offset_fraction
        self.exfil_after_attack = exfil_after_attack
        self._epoch = 0
        self._attacked = False
        self._pid = None
        #: Virtual time at which the exploit executed (for Figure 8).
        self.attack_time_ms = None

    def bind(self, vm):
        super().bind(vm)
        process = vm.create_process(self.process_name)
        self._pid = process.pid

    @property
    def process(self):
        return self.vm.processes[self._pid]

    @property
    def attacked(self):
        return self._attacked

    def step(self, start_ms, interval_ms):
        self._require_bound()
        self._epoch += 1
        process = self.process
        vm = self.vm

        # Benign per-epoch behaviour: a working allocation that is written
        # in-bounds and released.
        vm.cpu["rip"] = BENIGN_WRITE_RIP
        scratch = process.malloc(64)
        process.write(scratch, b"request-%06d" % self._epoch)
        process.free(scratch)

        if self._epoch == self.trigger_epoch and not self._attacked:
            # The exploit: allocate, then copy more than fits.
            victim = process.malloc(self.buffer_size)
            payload = bytes(
                (0x41 + (index % 26))
                for index in range(self.buffer_size + self.overflow_bytes)
            )
            vm.cpu["rip"] = OVERFLOW_RIP
            process.write(victim, payload)  # <- out-of-bounds store
            vm.cpu["rip"] = BENIGN_WRITE_RIP
            self._attacked = True
            if self.attack_time_ms is None:
                # Sticky: replay re-executes this store, but the timeline
                # anchors on the original exploit instant.
                self.attack_time_ms = (
                    start_ms + self.attack_offset_fraction * interval_ms
                )
            if self.exfil_after_attack:
                # Post-exploit damage attempt: open a connection and
                # exfiltrate. The kernel socket object stays behind as
                # forensic evidence; under Synchronous Safety the packet
                # itself is buffered and later destroyed.
                from repro.guest.devices import Packet

                vm.open_socket(
                    self._pid, ("10.0.0.5", 4444), ("198.51.100.7", 80)
                )
                vm.open_file(self._pid, "/var/www/html/.webshell.php")
                vm.nic.send(
                    Packet(
                        src="10.0.0.5:4444",
                        dst="198.51.100.7:80",
                        payload=b"BEGIN_DUMP " + payload[:32],
                    )
                )
        return {"synthetic_dirty": 0}

    def state_dict(self):
        return {"epoch": self._epoch, "attacked": self._attacked,
                "pid": self._pid}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._attacked = state["attacked"]
        self._pid = state["pid"]


class MalwareProgram(GuestProgram):
    """§5.6's Windows malware: reads the registry, writes the data to a
    file, and ships it to an external aggregation server."""

    name = "malware"

    MALWARE_NAME = "reg_read.exe"
    LOCAL_ENDPOINT = ("192.168.1.76", 49164)
    REMOTE_ENDPOINT = ("104.28.18.89", 8080)
    DROP_FILE = "\\Device\\HarddiskVolume2\\Users\\root\\Desktop\\write_file.txt"

    def __init__(self, trigger_epoch=2, hide=False):
        super().__init__()
        self.trigger_epoch = trigger_epoch
        self.hide = hide
        self._epoch = 0
        self._launched = False
        self._pid = None

    def step(self, start_ms, interval_ms):
        self._require_bound()
        self._epoch += 1
        if self._epoch != self.trigger_epoch or self._launched:
            return {"synthetic_dirty": 0}
        vm = self.vm
        self._pid = vm.create_process(self.MALWARE_NAME)
        self._launched = True

        # Harvest the registry (real reads of guest memory).
        harvested = vm.read_registry()
        blob = "\n".join("%s=%s" % (key, value) for key, value in harvested)

        # Drop the stolen data into a file...
        vm.open_file(self._pid, self.DROP_FILE)
        vm.disk.write(block=0x42, data=blob.encode("utf-8"))

        # ...and ship it to the aggregation server.
        socket_va = vm.open_socket(
            self._pid, self.LOCAL_ENDPOINT, self.REMOTE_ENDPOINT
        )
        from repro.guest.devices import Packet

        vm.nic.send(
            Packet(
                src="%s:%d" % self.LOCAL_ENDPOINT,
                dst="%s:%d" % self.REMOTE_ENDPOINT,
                payload=b"EXFIL " + blob.encode("utf-8"),
            )
        )
        vm.set_socket_state(socket_va, TCP_CLOSE_WAIT)
        if self.hide:
            vm.hide_process(self._pid)
        return {"synthetic_dirty": 0}

    @property
    def malware_pid(self):
        return self._pid

    def state_dict(self):
        return {"epoch": self._epoch, "launched": self._launched,
                "pid": self._pid}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._launched = state["launched"]
        self._pid = state["pid"]


class UseAfterFreeProgram(GuestProgram):
    """A dangling-pointer write (§4.2's DoubleTake-style evidence).

    Allocates a session object, frees it, keeps the stale pointer, and on
    the trigger epoch writes through it — disturbing the poison fill the
    allocator placed over the freed region.
    """

    name = "use-after-free"

    UAF_RIP = 0x000000000040F4EE  # stylized attack rip

    def __init__(self, process_name="sessiond", trigger_epoch=3,
                 object_size=48):
        super().__init__()
        self.process_name = process_name
        self.trigger_epoch = trigger_epoch
        self.object_size = object_size
        self._epoch = 0
        self._dangling = None
        self._attacked = False
        self._pid = None

    def bind(self, vm):
        super().bind(vm)
        process = vm.create_process(self.process_name)
        self._pid = process.pid
        # The victim object: allocated and freed before the loop starts;
        # the program keeps the dangling pointer.
        self._dangling = process.malloc(self.object_size)
        process.write(self._dangling, b"session-token-A1")
        process.free(self._dangling)

    @property
    def process(self):
        return self.vm.processes[self._pid]

    @property
    def attacked(self):
        return self._attacked

    def step(self, start_ms, interval_ms):
        self._require_bound()
        self._epoch += 1
        process = self.process
        self.vm.cpu["rip"] = BENIGN_WRITE_RIP
        scratch = process.malloc(32)
        process.write(scratch, b"tick %06d" % self._epoch)
        process.free(scratch)

        if self._epoch == self.trigger_epoch and not self._attacked:
            self.vm.cpu["rip"] = self.UAF_RIP
            process.write(self._dangling + 8, b"HIJACKED")  # dangling write
            self.vm.cpu["rip"] = BENIGN_WRITE_RIP
            self._attacked = True
        return {"synthetic_dirty": 0}

    def state_dict(self):
        return {"epoch": self._epoch, "attacked": self._attacked,
                "pid": self._pid, "dangling": self._dangling}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._attacked = state["attacked"]
        self._pid = state["pid"]
        self._dangling = state["dangling"]


class StackSmashProgram(GuestProgram):
    """A stack-smashing exploit (return-address overwrite).

    Runs normal call/return cycles each epoch; on the trigger epoch a
    function writes past a stack-local buffer, clobbering the StackGuard
    canary, and — crucially — *never executes its epilogue* (the
    hijacked return jumps elsewhere). Compiler-style stack protection
    misses this; CRIMES's end-of-epoch canary scan does not.
    """

    name = "stack-smash"

    SMASH_RIP = 0x000000000040C0DE  # stylized attack rip

    def __init__(self, process_name="netparser", trigger_epoch=3,
                 buffer_size=64, smash_bytes=8):
        super().__init__()
        self.process_name = process_name
        self.trigger_epoch = trigger_epoch
        self.buffer_size = buffer_size
        self.smash_bytes = smash_bytes
        self._epoch = 0
        self._smashed = False
        self._pid = None

    def bind(self, vm):
        super().bind(vm)
        self._pid = vm.create_process(self.process_name).pid

    @property
    def process(self):
        return self.vm.processes[self._pid]

    @property
    def smashed(self):
        return self._smashed

    def step(self, start_ms, interval_ms):
        self._require_bound()
        self._epoch += 1
        process = self.process
        guard = process.stack_guard

        # Benign call/return: locals written in bounds, epilogue passes.
        self.vm.cpu["rip"] = BENIGN_WRITE_RIP
        frame = guard.push_frame(48)
        process.write(frame, b"parse-%06d" % self._epoch)
        guard.pop_frame()

        if self._epoch == self.trigger_epoch and not self._smashed:
            # An enclosing caller frame, so the smash lands inside the
            # mapped stack even when it runs past the victim's canary.
            guard.push_frame(64)
            frame = guard.push_frame(self.buffer_size)
            payload = b"\x90" * self.buffer_size + b"\xde\xad\xbe\xef" * (
                max(self.smash_bytes // 4, 2)
            )
            self.vm.cpu["rip"] = self.SMASH_RIP
            process.write(frame, payload)  # smashes past the locals
            self.vm.cpu["rip"] = BENIGN_WRITE_RIP
            # Control flow is hijacked: the epilogue check never runs.
            guard.abandon_frame()
            self._smashed = True
        return {"synthetic_dirty": 0}

    def state_dict(self):
        return {"epoch": self._epoch, "smashed": self._smashed,
                "pid": self._pid}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._smashed = state["smashed"]
        self._pid = state["pid"]


class MemoryResidentMalware(GuestProgram):
    """Fileless, in-memory payload staged into a benign-looking process.

    Leaves no canary damage, no blacklisted process name, no kernel
    mutation — the fast per-epoch scans all pass. The evidence is a byte
    signature in RAM, which only a full-memory sweep (the asynchronous
    deep scanner's :class:`~repro.detectors.deep.SignatureSweepModule`)
    finds.
    """

    name = "memory-resident-malware"

    PAYLOAD = b"METERPRETER_STAGE2" + b"\x90" * 46

    def __init__(self, trigger_epoch=2, host_process="update_agent"):
        super().__init__()
        self.trigger_epoch = trigger_epoch
        self.host_process = host_process
        self._epoch = 0
        self._staged = False
        self._pid = None
        self._payload_va = None

    def bind(self, vm):
        super().bind(vm)
        process = vm.create_process(self.host_process)
        self._pid = process.pid

    def step(self, start_ms, interval_ms):
        self._require_bound()
        self._epoch += 1
        if self._epoch != self.trigger_epoch or self._staged:
            return {"synthetic_dirty": 0}
        process = self.vm.processes[self._pid]
        self._payload_va = process.malloc(len(self.PAYLOAD))
        process.write(self._payload_va, self.PAYLOAD)  # stays in-bounds
        self._staged = True
        return {"synthetic_dirty": 0}

    @property
    def staged(self):
        return self._staged

    def state_dict(self):
        return {"epoch": self._epoch, "staged": self._staged,
                "pid": self._pid, "payload_va": self._payload_va}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._staged = state["staged"]
        self._pid = state["pid"]
        self._payload_va = state["payload_va"]


class RootkitProgram(GuestProgram):
    """A Linux kernel rootkit: loads a module, hijacks a syscall slot, and
    hides a worker process via direct kernel-object manipulation."""

    name = "rootkit"

    MODULE_NAME = "diamorphine"
    HIJACKED_SYSCALL = 42
    PAYLOAD_ADDRESS = 0xFFFFFFFFA0100000

    def __init__(self, trigger_epoch=2, hide_worker=True):
        super().__init__()
        self.trigger_epoch = trigger_epoch
        self.hide_worker = hide_worker
        self._epoch = 0
        self._installed = False
        self._worker_pid = None

    def step(self, start_ms, interval_ms):
        self._require_bound()
        self._epoch += 1
        if self._epoch != self.trigger_epoch or self._installed:
            return {"synthetic_dirty": 0}
        vm = self.vm
        vm.load_module(self.MODULE_NAME, 0x8000)
        vm.hijack_syscall(self.HIJACKED_SYSCALL, self.PAYLOAD_ADDRESS)
        worker = vm.create_process("kworker_miner", canaries_enabled=False)
        self._worker_pid = worker.pid
        if self.hide_worker:
            vm.hide_process(worker.pid)
        self._installed = True
        return {"synthetic_dirty": 0}

    @property
    def worker_pid(self):
        return self._worker_pid

    def state_dict(self):
        return {"epoch": self._epoch, "installed": self._installed,
                "worker_pid": self._worker_pid}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._installed = state["installed"]
        self._worker_pid = state["worker_pid"]
