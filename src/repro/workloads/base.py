"""Base class for guest programs driven by the epoch loop."""

from repro.errors import CrimesError


class GuestProgram:
    """Something executing inside a guest VM, one epoch at a time.

    Lifecycle: :meth:`bind` attaches the program to a VM; the epoch loop
    calls :meth:`step` during each speculative interval and
    :meth:`on_epoch_end` after each committed epoch. Programs must be
    *deterministic given their state*: replay restores ``state_dict()``
    from the clean checkpoint and calls :meth:`step` again, expecting the
    identical stores.
    """

    name = "program"

    def __init__(self):
        self.vm = None

    def bind(self, vm):
        self.vm = vm

    def _require_bound(self):
        if self.vm is None:
            raise CrimesError("program %r not bound to a VM" % self.name)

    def step(self, start_ms, interval_ms):
        """Run one speculative interval.

        Returns a report dict; recognized keys:

        * ``synthetic_dirty`` — dirty pages modeled but not physically
          written (bulk benchmark traffic).
        """
        raise NotImplementedError

    def on_epoch_end(self, record):
        """Called after a committed epoch with its :class:`EpochRecord`."""

    @property
    def finished(self):
        """True when the program has no more work (benchmarks terminate)."""
        return False

    def state_dict(self):
        return {}

    def load_state_dict(self, state):
        pass
