"""Web-server workloads: NGINX + wrk (§5.1, §5.4, Table 1, Figure 7).

Two pieces:

* :class:`WebServerWorkload` — a dirty-page-profile guest program at three
  wrk load levels, used by the Table 1 cost-breakdown experiment.
* :class:`WebServerExperiment` — a discrete-event closed-loop HTTP model
  for Figure 7: N client connections each perform connect → request →
  response cycles; under Synchronous Safety every server→client message
  (SYN/ACK and response alike) is held until the end-of-epoch commit,
  which is exactly why the three-way handshake hurts and why the
  closed-loop client starves the server at large intervals (§5.4).
"""

import math

from repro.checkpoint.costmodel import CheckpointCostModel, OptimizationLevel
from repro.netbuf.buffer import BufferMode
from repro.sim.clock import VirtualClock
from repro.sim.engine import Engine, Timeout
from repro.sim.rng import SeededStream
from repro.vmi.costmodel import VmiCostModel
from repro.workloads.base import GuestProgram


class WebLoadLevel:
    """One wrk intensity: dirty-page profile of the serving VM."""

    __slots__ = ("name", "d20", "tau_ms", "connections")

    def __init__(self, name, d20, tau_ms, connections):
        self.name = name
        self.d20 = d20
        self.tau_ms = tau_ms
        self.connections = connections

    def working_set_pages(self):
        return self.d20 / (1.0 - math.exp(-20.0 / self.tau_ms))

    def dirty_pages(self, interval_ms):
        return self.working_set_pages() * (
            1.0 - math.exp(-interval_ms / self.tau_ms)
        )


#: Calibrated so that the no-opt 20 ms pipeline reproduces Table 1's rows.
WEB_LOAD_LEVELS = {
    "light": WebLoadLevel("light", d20=1220, tau_ms=60, connections=16),
    "medium": WebLoadLevel("medium", d20=1435, tau_ms=60, connections=48),
    "high": WebLoadLevel("high", d20=2000, tau_ms=60, connections=128),
}


class WebServerWorkload(GuestProgram):
    """NGINX under a fixed wrk load level (dirty-profile program)."""

    def __init__(self, load="medium", seed=0, jitter=0.04):
        super().__init__()
        level = WEB_LOAD_LEVELS.get(load)
        if level is None:
            raise KeyError(
                "unknown load level %r (known: %s)"
                % (load, ", ".join(sorted(WEB_LOAD_LEVELS)))
            )
        self.name = "nginx/%s" % load
        self.level = level
        self.jitter = jitter
        self._rng = SeededStream(seed, self.name)

    def step(self, start_ms, interval_ms):
        self._require_bound()
        expected = self.level.dirty_pages(interval_ms)
        return {"synthetic_dirty": int(self._rng.jitter(expected, self.jitter))}


class WebResult:
    """Measured client-side performance of one experiment run."""

    __slots__ = ("mean_latency_ms", "throughput_rps", "requests_completed",
                 "duration_ms", "mean_pause_ms")

    def __init__(self, mean_latency_ms, throughput_rps, requests_completed,
                 duration_ms, mean_pause_ms):
        self.mean_latency_ms = mean_latency_ms
        self.throughput_rps = throughput_rps
        self.requests_completed = requests_completed
        self.duration_ms = duration_ms
        self.mean_pause_ms = mean_pause_ms

    def __repr__(self):
        return "WebResult(latency=%.2fms, throughput=%.0f req/s)" % (
            self.mean_latency_ms,
            self.throughput_rps,
        )


class WebServerExperiment:
    """Closed-loop wrk clients against a CRIMES-protected NGINX.

    ``buffering=None`` disables CRIMES entirely (the normalization
    baseline). ``BufferMode.BEST_EFFORT`` pauses the server for audits but
    releases outputs immediately; ``BufferMode.SYNCHRONOUS`` additionally
    holds every server→client message until the end-of-epoch commit.
    """

    def __init__(self, interval_ms=50.0, buffering=BufferMode.SYNCHRONOUS,
                 load="medium", duration_ms=5000.0, service_ms=2.4,
                 rtt_ms=0.2, keepalive=False, cost_model=None,
                 vmi_costs=None, seed=0):
        self.interval_ms = interval_ms
        self.buffering = buffering
        self.level = WEB_LOAD_LEVELS[load]
        self.duration_ms = duration_ms
        self.service_ms = service_ms
        self.rtt_ms = rtt_ms
        self.keepalive = keepalive
        self.costs = cost_model if cost_model is not None else CheckpointCostModel()
        self.vmi_costs = vmi_costs if vmi_costs is not None else VmiCostModel()
        self._rng = SeededStream(seed, "web/%s/%s" % (load, interval_ms))

        self.latencies = []
        self._pauses = []
        self._paused = False
        self._engine = None
        self._commit_event = None
        self._resume_event = None

    # -- pause model -----------------------------------------------------------

    def _epoch_pause_ms(self):
        """Full-optimization CRIMES pause for one epoch at this load."""
        dirty = self._rng.jitter(
            self.level.dirty_pages(self.interval_ms), 0.04
        )
        level = OptimizationLevel.FULL
        return (
            self.costs.suspend_ms(dirty, self.interval_ms)
            + self.vmi_costs.SCAN_BASE_MS
            + self.costs.bitscan_ms(dirty, level)
            + self.costs.map_ms(dirty, level)
            + self.costs.copy_ms(dirty, level)
            + self.costs.resume_ms(dirty, self.interval_ms)
        )

    # -- DES processes ------------------------------------------------------------

    def _epoch_driver(self):
        """Pause the server and commit the buffer at every epoch boundary."""
        while True:
            yield Timeout(self.interval_ms)
            pause = self._epoch_pause_ms()
            self._pauses.append(pause)
            self._paused = True
            self._resume_event = self._engine.event()
            yield Timeout(pause)
            self._paused = False
            resume_event = self._resume_event
            commit_event, self._commit_event = (
                self._commit_event,
                self._engine.event(),
            )
            resume_event.trigger()
            commit_event.trigger()

    def _server_turnaround(self):
        """One server->client message: wait out pauses and (sync) commits."""
        if self._paused:
            yield self._resume_event
        if self.buffering is BufferMode.SYNCHRONOUS:
            # Held in the hypervisor buffer until the next commit.
            yield self._commit_event
        yield Timeout(self.rtt_ms / 2.0)

    def _connection(self):
        """One closed-loop wrk connection."""
        while True:
            request_start = self._engine.now()
            if not self.keepalive:
                # Three-way handshake: SYN out, SYN/ACK back (buffered!).
                yield Timeout(self.rtt_ms / 2.0)
                for step in self._server_turnaround():
                    yield step
                yield Timeout(self.rtt_ms / 2.0)  # final ACK
            # Request out, service, response back (buffered!).
            yield Timeout(self.rtt_ms / 2.0)
            if self._paused:
                yield self._resume_event
            yield Timeout(self.service_ms)
            for step in self._server_turnaround():
                yield step
            self.latencies.append(self._engine.now() - request_start)

    # -- driver ----------------------------------------------------------------------

    def run(self):
        """Simulate ``duration_ms`` of client traffic; returns a WebResult."""
        self._engine = Engine(VirtualClock())
        self._commit_event = self._engine.event()
        self._resume_event = self._engine.event()
        if self.buffering is not None:
            self._engine.spawn(self._epoch_driver(), name="epoch-driver")
        for index in range(self.level.connections):
            self._engine.spawn(self._connection(), name="conn-%d" % index)
        self._engine.run(until_ms=self.duration_ms)

        completed = len(self.latencies)
        mean_latency = (
            sum(self.latencies) / completed if completed else float("inf")
        )
        throughput = completed / (self.duration_ms / 1000.0)
        mean_pause = sum(self._pauses) / len(self._pauses) if self._pauses else 0.0
        return WebResult(
            mean_latency_ms=mean_latency,
            throughput_rps=throughput,
            requests_completed=completed,
            duration_ms=self.duration_ms,
            mean_pause_ms=mean_pause,
        )


def baseline_web_result(load="medium", **kwargs):
    """Unprotected run used to normalize Figure 7's series."""
    experiment = WebServerExperiment(buffering=None, load=load, **kwargs)
    return experiment.run()
