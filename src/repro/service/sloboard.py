"""The fleet SLO dashboard: burn summaries across vault and live fleet.

One dashboard payload answers the operator question the paper's §3.1
budget discussion raises but never operationalizes: *which tenants are
burning their latency budgets, and how badly?* Rows come from two
evidence streams and fold into one per-tenant view:

* **Vault cases** — every stored incident bundle carries the tenant's
  SLO watchdog trail at incident time; those trails are history.
* **Live fleet** — an attached :class:`~repro.core.cloud.CloudHost`
  contributes each running tenant's current watchdog snapshot, plus the
  host's fleet-merge registry rollup (summed ``slo.alerts`` /
  ``slo.evaluations`` counters across the fleet).

Everything here is plain-data in, plain-data out, on virtual time —
the dashboard is itself evidence-grade (two calls over the same inputs
are byte-identical).
"""

from repro.obs.fleet_merge import merge_registry_snapshots
from repro.obs.slo import summarize_trail

#: Schema tag for the dashboard payload.
BOARD_SCHEMA = "crimes-slo-board/1"


def _empty_row():
    return {
        "cases": 0,
        "live": False,
        "evaluations": 0,
        "alerts": 0,
        "burn_rate": 0.0,
        "budgets": {},
        "worst_budget": None,
    }


def _fold_summary(row, summary):
    """Fold one trail summary into a tenant's dashboard row."""
    row["evaluations"] += summary["evaluations"]
    row["alerts"] += summary["alerts"]
    for name, budget in summary["budgets"].items():
        entry = row["budgets"].setdefault(name, {
            "limit": budget["limit"], "unit": budget["unit"],
            "breaches": 0, "worst_value": None, "worst_ratio": None,
        })
        entry["breaches"] += budget["breaches"]
        value = budget["worst_value"]
        if value is not None and (entry["worst_value"] is None
                                  or value > entry["worst_value"]):
            entry["worst_value"] = value
            entry["worst_ratio"] = budget["worst_ratio"]


def _finish_row(row):
    row["burn_rate"] = (row["alerts"] / row["evaluations"]
                        if row["evaluations"] else 0.0)
    ratioed = [(entry["worst_ratio"], name)
               for name, entry in row["budgets"].items()
               if entry["worst_ratio"] is not None]
    if ratioed:
        row["worst_budget"] = max(ratioed)[1]
    return row


def build_slo_dashboard(vault=None, host=None, fleet_rollup=None):
    """Assemble the fleet SLO dashboard payload.

    Any combination of sources may be absent: a vault-only board covers
    stored incidents, a host-only board covers the running fleet, and a
    pre-computed ``fleet_rollup`` (an ``observability_rollup()`` payload
    collected elsewhere, e.g. shipped from a remote scheduler) stands in
    when the host itself is not reachable from the service process.
    """
    tenants = {}

    if vault is not None:
        for case in vault.cases():
            row = tenants.setdefault(case["tenant"], _empty_row())
            row["cases"] += 1
            _fold_summary(row, summarize_trail(
                vault.bundle(case["case_id"])["slo"]))

    host_fleet = None
    if host is not None:
        for name, record in sorted(host.tenants.items()):
            watchdog = getattr(record.crimes, "slo_watchdog", None)
            if watchdog is None:
                continue
            row = tenants.setdefault(name, _empty_row())
            row["live"] = True
            _fold_summary(row, summarize_trail(watchdog.snapshot()))
        host_fleet = host.observability_rollup()["fleet"]
        if fleet_rollup is None:
            fleet_rollup = merge_registry_snapshots({
                name: record.crimes.observer.registry.snapshot()
                for name, record in host.tenants.items()
            })

    for row in tenants.values():
        _finish_row(row)

    board = {
        "schema": BOARD_SCHEMA,
        "tenants": tenants,
        "fleet": {
            "tenants": len(tenants),
            "cases": sum(row["cases"] for row in tenants.values()),
            "alerts": sum(row["alerts"] for row in tenants.values()),
            "evaluations": sum(row["evaluations"]
                               for row in tenants.values()),
            "hot_tenants": [
                name for _, name in sorted(
                    ((row["burn_rate"], name)
                     for name, row in tenants.items()
                     if row["burn_rate"] > 0),
                    reverse=True,
                )[:3]
            ],
        },
    }
    total_evals = board["fleet"]["evaluations"]
    board["fleet"]["burn_rate"] = (
        board["fleet"]["alerts"] / total_evals if total_evals else 0.0)
    if fleet_rollup is not None:
        counters = fleet_rollup.get("counters", {})
        board["fleet"]["rollup"] = {
            "slo_alerts": counters.get("slo.alerts", 0),
            "slo_evaluations": counters.get("slo.evaluations", 0),
            "interval_nudges": counters.get("slo.interval_nudges", 0),
        }
    if host_fleet is not None:
        board["fleet"]["host"] = {
            "tenants": host_fleet["tenants"],
            "incidents": host_fleet["incidents"],
            "quarantined": host_fleet["quarantined"],
            "degraded": host_fleet["degraded"],
            "mean_pause_ms": host_fleet["mean_pause_ms"],
        }
    return board
