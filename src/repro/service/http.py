"""The HTTP control plane: a stdlib server over the case vault.

This is the one *explicitly real* layer of the service — request
latency is wall-clock latency, the listener is a real socket — so it is
also the only service module with reasoned crimeslint baseline entries.
Everything it serves is computed by the deterministic layers below
(vault, workers, SLO board); the handler only translates HTTP into
those calls and typed errors into structured JSON.

Routes::

    GET  /healthz            liveness + vault/queue stats
    GET  /cases              every case record, ingest order
    GET  /cases/<id>         one case record (reports included)
    GET  /cases/<id>/bundle  the stored, validated incident bundle
    GET  /findings           cross-tenant query: ?module=&since=&tenant=
    GET  /slo                the fleet SLO dashboard payload
    GET  /metrics            Prometheus text exposition (live scrape)
    GET  /audit              vault audit log + chain re-verification
    GET  /jobs               worker-queue stats
    POST /cases              ingest one crimes-obs/2 bundle
    POST /jobs               enqueue forensics: {"case_id": ...}
    POST /fleet              verify a fleet-merge flight export

Error responses are always ``{"error": {"code", "message"}}`` — the
codes are :data:`repro.service.ingest.INGEST_ERROR_CODES` plus
``not-found``/``bad-request``; a duplicate case is ``409``, every other
rejection ``400``.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    CaseNotFoundError,
    DuplicateCaseError,
    IngestError,
    ServiceError,
)
from repro.obs.exporters import render_prometheus, snapshot_instruments
from repro.obs.fleet_merge import merge_registry_snapshots
from repro.obs.registry import MetricsRegistry
from repro.service.ingest import verify_fleet_export
from repro.service.sloboard import build_slo_dashboard
from repro.service.workers import ForensicsWorkerQueue

#: Request body ceiling (a bundle with a full flight ring is ~1 MiB).
MAX_BODY_BYTES = 16 << 20


class _RequestError(Exception):
    """Internal: carries an HTTP status + structured error payload."""

    def __init__(self, status, code, message):
        super().__init__(message)
        self.status = status
        self.code = code


class CaseService:
    """The service object: vault + worker queue + live fleet + listener."""

    def __init__(self, vault, host=None, workers=2, seed=0,
                 bind="127.0.0.1", port=0):
        self.vault = vault
        self.host = host
        self.queue = ForensicsWorkerQueue(vault, workers=workers, seed=seed)
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "service.requests", help="HTTP requests handled")
        self._errors = self.registry.counter(
            "service.errors", help="requests answered with an error")
        self._accepted = self.registry.counter(
            "service.ingest.accepted", help="bundles accepted into the vault")
        self._rejected = self.registry.counter(
            "service.ingest.rejected", help="bundles rejected at the boundary")
        self._enqueued = self.registry.counter(
            "service.jobs.enqueued", help="forensics jobs queued")
        self._fleet_verified = self.registry.counter(
            "service.fleet.exports_verified",
            help="fleet-merge exports that passed chain re-derivation")
        self._latency = self.registry.histogram(
            "service.request_ms", help="wall-clock request latency")
        self._server = ThreadingHTTPServer((bind, port),
                                           _make_handler(self))
        self._server.daemon_threads = True
        # Handler threads and the owning thread both touch the listener
        # thread handle and the last verified fleet export; this lock
        # is their guard (CRL007).
        self._lock = threading.Lock()
        self._thread = None
        self.last_fleet_export = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self):
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._server.server_address[:2]

    @property
    def url(self):
        return "http://%s:%d" % self.address

    def start(self):
        self.queue.start()
        thread = threading.Thread(target=self._server.serve_forever,
                                  name="case-service", daemon=True)
        with self._lock:
            self._thread = thread
        thread.start()
        return self

    def stop(self):
        self._server.shutdown()
        self._server.server_close()
        # Snapshot the handle under the lock, join outside it: joining
        # while holding the lock would stall any handler thread racing
        # to read service state during shutdown.
        with self._lock:
            thread = self._thread
        if thread is not None:
            thread.join()
        self.queue.stop()

    def serve_forever(self):
        """Foreground mode for the CLI (Ctrl-C to stop)."""
        self.queue.start()
        try:
            self._server.serve_forever()
        finally:
            self._server.server_close()
            self.queue.stop()

    # -- request handlers (HTTP-free: dicts in, payloads out) -------------

    def handle_get(self, path, params):
        if path == "/healthz":
            return 200, {"ok": True, "vault": self.vault.stats(),
                         "queue": self.queue.stats(),
                         "live_fleet": self.host is not None}
        if path == "/cases":
            return 200, {"cases": self.vault.cases()}
        if path.startswith("/cases/"):
            rest = path[len("/cases/"):]
            if rest.endswith("/bundle"):
                return 200, self.vault.bundle(rest[:-len("/bundle")])
            return 200, self.vault.case(rest)
        if path == "/findings":
            since = params.get("since")
            if since is not None:
                try:
                    since = float(since)
                except ValueError:
                    raise _RequestError(
                        400, "bad-request",
                        "since must be a virtual-time ms number, got %r"
                        % since) from None
            rows = self.vault.findings(module=params.get("module"),
                                       since=since,
                                       tenant=params.get("tenant"))
            return 200, {"findings": rows, "count": len(rows)}
        if path == "/slo":
            return 200, build_slo_dashboard(vault=self.vault, host=self.host)
        if path == "/metrics":
            return 200, self.render_metrics()
        if path == "/audit":
            return 200, {"entries": self.vault.audit_entries(),
                         "verify": self.vault.verify_audit()}
        if path == "/jobs":
            return 200, self.queue.stats()
        raise _RequestError(404, "not-found", "no route for %s" % path)

    def handle_post(self, path, body):
        if path == "/cases":
            case = self.vault.ingest(body, source="http")
            self._accepted.inc()
            return 201, case
        if path == "/jobs":
            if not isinstance(body, dict) or "case_id" not in body:
                raise _RequestError(400, "bad-request",
                                    "POST /jobs needs {\"case_id\": ...}")
            job_id = self.queue.enqueue(body["case_id"],
                                        plugins=body.get("plugins"))
            self._enqueued.inc()
            return 202, {"job_id": job_id, "case_id": body["case_id"]}
        if path == "/fleet":
            if not isinstance(body, dict):
                raise _RequestError(
                    400, "bad-request",
                    "POST /fleet needs a merged flight export object")
            _check_rollup(body.get("registry_rollup"))
            verdict = verify_fleet_export(body)
            self._fleet_verified.inc()
            with self._lock:
                self.last_fleet_export = body
            return 200, {"verified": verdict}
        raise _RequestError(404, "not-found", "no route for %s" % path)

    def render_metrics(self):
        """The live ``/metrics`` exposition text.

        Three registries share one renderer (and one escaping
        behavior): the service's own instruments render live; when a
        live fleet is attached, its per-tenant registries merge and
        render through the snapshot adapter under a ``fleet_`` prefix —
        the exact path a remote scheduler's shipped rollup would take.
        """
        self.registry.gauge(
            "service.vault.cases", help="cases stored"
        ).set(self.vault.stats()["cases"])
        self.registry.gauge(
            "service.jobs.pending", help="forensics jobs not yet done"
        ).set(self.queue.stats()["pending"])
        text = render_prometheus(self.registry)
        rollup = None
        with self._lock:
            last_export = self.last_fleet_export
        if self.host is not None:
            rollup = merge_registry_snapshots({
                name: record.crimes.observer.registry.snapshot()
                for name, record in self.host.tenants.items()
            })
        elif last_export is not None:
            rollup = last_export.get("registry_rollup")
        if rollup is not None:
            text += render_prometheus(
                snapshot_instruments(rollup, prefix="fleet."))
        return text


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_rollup(rollup):
    """Reject a ``registry_rollup`` that would not render as metrics.

    :func:`~repro.service.ingest.verify_fleet_export` re-derives the
    export's event chains but never looks at this side payload — a
    malformed rollup stored alongside a verified export would otherwise
    poison every later ``GET /metrics`` until the next export.
    """
    def bad(detail):
        return _RequestError(400, "bad-request",
                             "registry_rollup %s" % detail)

    if rollup is None:
        return
    if not isinstance(rollup, dict):
        raise bad("must be an object")
    for kind in ("counters", "gauges"):
        entries = rollup.get(kind, {})
        if not isinstance(entries, dict):
            raise bad("%s must be an object" % kind)
        for name, entry in entries.items():
            value = entry.get("value") if isinstance(entry, dict) else entry
            if value is not None and not _is_number(value):
                raise bad("%s[%r] carries a non-numeric value" % (kind, name))
    histograms = rollup.get("histograms", {})
    if not isinstance(histograms, dict):
        raise bad("histograms must be an object")
    for name, entry in histograms.items():
        if not isinstance(entry, dict):
            raise bad("histograms[%r] must be an object" % name)
        buckets = entry.get("buckets", {})
        if not isinstance(buckets, dict):
            raise bad("histograms[%r].buckets must be an object" % name)
        bounds = buckets.get("le", ())
        counts = buckets.get("counts", ())
        if not isinstance(bounds, (list, tuple)) \
                or not isinstance(counts, (list, tuple)):
            raise bad("histograms[%r] bucket arrays must be lists" % name)
        samples = (list(bounds) + list(counts)
                   + [entry.get("sum", 0.0), entry.get("count", 0)])
        if not all(_is_number(sample) for sample in samples):
            raise bad("histograms[%r] carries non-numeric samples" % name)


def _make_handler(service):
    """Bind a handler class to one :class:`CaseService` instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "crimes-case-service/1"
        protocol_version = "HTTP/1.1"

        # -- plumbing ------------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # the service's metrics are its access log

        def _send_json(self, status, payload):
            body = (json.dumps(payload, indent=2, sort_keys=True)
                    + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status, text):
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error_json(self, status, code, message):
            service._errors.inc()
            self._send_json(status,
                            {"error": {"code": code, "message": message}})

        def _read_body(self):
            raw_length = self.headers.get("Content-Length")
            try:
                length = int(raw_length or 0)
            except ValueError:
                self.close_connection = True
                raise _RequestError(
                    400, "bad-request",
                    "Content-Length is not an integer: %r" % raw_length
                ) from None
            if length < 0:
                self.close_connection = True
                raise _RequestError(400, "bad-request",
                                    "Content-Length must be >= 0")
            if length > MAX_BODY_BYTES:
                # The body stays unread either way; close instead of
                # leaving the keep-alive connection desynced.
                self.close_connection = True
                raise _RequestError(413, "bad-request",
                                    "body exceeds %d bytes" % MAX_BODY_BYTES)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise _RequestError(400, "bad-request",
                                    "POST body must be JSON")
            try:
                return json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError) as err:
                raise _RequestError(400, "not-json",
                                    "body is not parseable JSON: %s"
                                    % err) from err

        # -- dispatch ------------------------------------------------------

        def _dispatch(self, method):
            started = time.perf_counter()
            service._requests.inc()
            split = urlsplit(self.path)
            params = {key: values[-1] for key, values in
                      parse_qs(split.query).items()}
            try:
                if method == "GET":
                    status, payload = service.handle_get(split.path, params)
                else:
                    status, payload = service.handle_post(
                        split.path, self._read_body())
                if split.path == "/metrics":
                    self._send_text(status, payload)
                else:
                    self._send_json(status, payload)
            except _RequestError as err:
                self._send_error_json(err.status, err.code, str(err))
            except DuplicateCaseError as err:
                service._rejected.inc()
                self._send_error_json(409, err.code, str(err))
            except IngestError as err:
                service._rejected.inc()
                self._send_error_json(400, err.code, str(err))
            except CaseNotFoundError as err:
                self._send_error_json(404, "not-found", str(err))
            except ServiceError as err:
                self._send_error_json(400, "bad-request", str(err))
            finally:
                service._latency.observe(
                    (time.perf_counter() - started) * 1000.0)

        def do_GET(self):
            self._dispatch("GET")

        def do_POST(self):
            self._dispatch("POST")

    return Handler
