"""The case vault: read-only evidence storage with an audited boundary.

Layout (everything under one ``root`` directory)::

    root/
      audit.jsonl            append-only, hash-chained vault audit log
      cases/<case-id>/
        case.json            crimes-case/1 metadata + attached reports
        bundle.json          the validated crimes-obs/2 bundle (0444)
        dump.pkl             optional memory-dump attachment (0444)

Three properties make this a *vault* rather than a directory of JSON:

* **Verified on ingest** — every bundle goes through
  :mod:`repro.service.ingest`, which re-derives the flight hash chain
  and the causal epoch chain; a rejected artifact never touches
  ``cases/``.
* **Read-only evidence** — ``bundle.json`` and ``dump.pkl`` are written
  once and chmod'd read-only; the case ID is derived from the flight
  chain head, so "overwriting" a case with altered evidence is
  structurally impossible (altered evidence hashes to a different ID,
  and re-ingesting identical evidence is a typed duplicate rejection).
* **Append-only audit log** — every ingest, rejection, and report
  attachment appends one hash-chained line to ``audit.jsonl``; the
  chain re-verifies with :meth:`CaseVault.verify_audit`, so the vault's
  own history carries the same tamper evidence as the bundles it holds.

Timestamps in the audit log are *virtual* (the evidence's own timeline)
plus a monotone logical sequence — the vault never reads the wall
clock, which keeps the whole storage layer deterministic and inside the
repo's crimeslint envelope; only the HTTP layer above is "real".
"""

import hashlib
import json
import os
import pickle
import re
import threading

from repro.errors import (
    CaseNotFoundError,
    DuplicateCaseError,
    IngestError,
    ServiceError,
    VaultIntegrityError,
)
from repro.forensics.dumps import MemoryDump
from repro.service.ingest import case_id_for, validate_bundle

#: Schema tag for stored case artifacts.
CASE_SCHEMA = "crimes-case/1"

#: The audit chain's genesis (an empty vault has this head).
AUDIT_GENESIS = hashlib.sha256(b"crimes-case-vault-genesis").hexdigest()

#: The only shape a case ID can have: ``case-`` + 16 hex chars of the
#: flight chain head (:func:`~repro.service.ingest.case_id_for`).
_CASE_ID_RE = re.compile(r"^case-[0-9a-f]{16}$")

_canonical = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode


def _chain_digest(prev_hash, payload):
    return hashlib.sha256(
        (prev_hash + _canonical(payload)).encode("utf-8")
    ).hexdigest()


def _normalize_module(name):
    """Query-side module aliasing: ``syscall_table`` == ``syscall-table``."""
    return str(name).replace("_", "-")


def _finding_rows(case_id, bundle):
    """Flatten one bundle into queryable finding rows (causally stamped).

    Primary source is the journaled ``scan.finding`` flight events
    (virtual-time stamped, hash-covered); detection-result findings that
    never hit the journal (async verdicts, non-critical severities) ride
    along stamped with the bundle's incident time. Severity is joined in
    from the detection result where the module+summary matches.
    """
    detection = bundle.get("detection") or {}
    severity_by_key = {
        (finding["module"], finding["summary"]): finding["severity"]
        for finding in detection.get("findings", ())
    }
    rows = []
    seen = set()
    for event in bundle["flight"]["events"]:
        if event["kind"] != "scan.finding":
            continue
        attrs = event.get("attrs", {})
        key = (attrs.get("module"), attrs.get("summary"))
        seen.add(key)
        rows.append({
            "case_id": case_id,
            "tenant": event.get("tenant"),
            "t_ms": event.get("t_ms"),
            "epoch": event.get("epoch"),
            "seq": event.get("seq"),
            "module": attrs.get("module"),
            "kind": attrs.get("finding_kind"),
            "severity": severity_by_key.get(key),
            "summary": attrs.get("summary"),
            "source": "flight",
        })
    for finding in detection.get("findings", ()):
        if (finding["module"], finding["summary"]) in seen:
            continue
        rows.append({
            "case_id": case_id,
            "tenant": bundle.get("tenant"),
            "t_ms": bundle.get("virtual_time_ms"),
            "epoch": detection.get("epoch"),
            "seq": None,
            "module": finding["module"],
            "kind": finding["kind"],
            "severity": finding["severity"],
            "summary": finding["summary"],
            "source": "detection",
        })
    return rows


def _row_order(row):
    # Causal order across tenants: virtual time, then tenant, then the
    # per-tenant journal sequence (detection-only rows sort after the
    # journaled rows of the same instant — they carry no seq).
    return (row["t_ms"], row["tenant"] or "",
            1 if row["seq"] is None else 0, row["seq"] or 0)


class CaseVault:
    """Directory-backed case storage; safe for concurrent service use."""

    def __init__(self, root):
        self.root = os.path.abspath(root)
        self.cases_dir = os.path.join(self.root, "cases")
        self.audit_path = os.path.join(self.root, "audit.jsonl")
        os.makedirs(self.cases_dir, exist_ok=True)
        self._lock = threading.RLock()
        self._audit_seq = 0
        self._audit_head = AUDIT_GENESIS
        self.rejects = 0
        self._reload_audit_state()

    # -- audit log ---------------------------------------------------------

    def _reload_audit_state(self):
        """Recover the audit chain head after a reopen (append-only)."""
        if not os.path.exists(self.audit_path):
            return
        with open(self.audit_path, "r") as handle:
            for line in handle:
                if not line.strip():
                    continue
                entry = json.loads(line)
                self._audit_seq = entry["seq"] + 1
                self._audit_head = entry["hash"]
                if entry["kind"] == "vault.reject":
                    self.rejects += 1

    def _audit_append(self, kind, **details):
        """Append one hash-chained line to the vault audit log."""
        payload = {"seq": self._audit_seq, "kind": kind}
        payload.update(details)
        digest = _chain_digest(self._audit_head, payload)
        entry = dict(payload, prev_hash=self._audit_head, hash=digest)
        with open(self.audit_path, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
        self._audit_seq += 1
        self._audit_head = digest
        return entry

    def audit_entries(self):
        """Every audit-log entry, oldest first."""
        if not os.path.exists(self.audit_path):
            return []
        with open(self.audit_path, "r") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def verify_audit(self):
        """Re-derive the audit chain; ``{"ok", "checked", "error"}``."""
        # Snapshot the log and the head in one locked step: verifying
        # against a head an in-flight ingest is about to advance would
        # report a torn chain that never existed on disk.
        with self._lock:
            entries = self.audit_entries()
            head = self._audit_head
        prev = AUDIT_GENESIS
        checked = 0
        for entry in entries:
            payload = {key: value for key, value in entry.items()
                       if key not in ("prev_hash", "hash")}
            if entry["prev_hash"] != prev:
                return {"ok": False, "checked": checked,
                        "error": "audit chain broken at seq=%d"
                                 % entry["seq"]}
            if _chain_digest(prev, payload) != entry["hash"]:
                return {"ok": False, "checked": checked,
                        "error": "audit entry seq=%d hash mismatch"
                                 % entry["seq"]}
            prev = entry["hash"]
            checked += 1
        if prev != head:
            return {"ok": False, "checked": checked,
                    "error": "audit head does not match the log tail"}
        return {"ok": True, "checked": checked, "error": None}

    # -- ingest ------------------------------------------------------------

    def _case_dir(self, case_id):
        # Case IDs arrive off the wire (URL segments, job bodies); one
        # that does not match the content-derived format must never
        # reach os.path.join, or ``../`` walks out of the vault.
        if not isinstance(case_id, str) or not _CASE_ID_RE.match(case_id):
            raise CaseNotFoundError(case_id)
        return os.path.join(self.cases_dir, case_id)

    def ingest(self, bundle, dump=None, source="api"):
        """Validate and store one bundle; returns the case record.

        The bundle is re-verified *before* anything is written; on any
        rejection the vault's case set is untouched and the decision is
        recorded in the audit log. ``dump`` optionally attaches a
        :class:`~repro.forensics.dumps.MemoryDump` for the async
        forensics workers.
        """
        with self._lock:
            try:
                bundle = validate_bundle(bundle)
            except IngestError as err:
                self.rejects += 1
                self._audit_append(
                    "vault.reject", source=source, code=err.code,
                    detail=str(err),
                )
                raise
            case_id = case_id_for(bundle)
            case_dir = self._case_dir(case_id)
            if os.path.exists(case_dir):
                self.rejects += 1
                err = DuplicateCaseError(case_id)
                self._audit_append(
                    "vault.reject", source=source, code=err.code,
                    case_id=case_id, detail=str(err),
                )
                raise err

            dump_meta = None
            staging = case_dir + ".staging"
            self._clear_staging(staging)  # stale leftover from a crash
            os.makedirs(staging)
            committed = False
            try:
                bundle_path = os.path.join(staging, "bundle.json")
                with open(bundle_path, "w") as handle:
                    json.dump(bundle, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                os.chmod(bundle_path, 0o444)
                if dump is not None:
                    dump_meta = self._write_dump(staging, dump)
                case = {
                    "schema": CASE_SCHEMA,
                    "case_id": case_id,
                    "tenant": bundle["tenant"],
                    "reason": bundle["reason"],
                    "incident_epoch": bundle["incident_epoch"],
                    "virtual_time_ms": bundle["virtual_time_ms"],
                    "ingested_seq": self._audit_seq,
                    "source": source,
                    "flight_head": bundle["flight"]["head_hash"],
                    "flight_events": len(bundle["flight"]["events"]),
                    "findings": len(_finding_rows(case_id, bundle)),
                    "slo_alerts": bundle["slo"].get("alerts", 0),
                    "dump": dump_meta,
                    "reports": [],
                    "state": "open",
                }
                self._write_case_json(staging, case)
                os.rename(staging, case_dir)
                committed = True
            finally:
                # Leave no half-written case behind, whatever went
                # wrong — OSError, a non-MemoryDump attachment
                # (ServiceError), an unserializable field (TypeError).
                # A surviving staging dir would block every future
                # ingest of this case ID.
                if not committed:
                    self._clear_staging(staging)
            self._audit_append(
                "vault.ingest", source=source, case_id=case_id,
                tenant=bundle["tenant"], reason=bundle["reason"],
                t_ms=bundle["virtual_time_ms"],
                flight_head=bundle["flight"]["head_hash"],
                dump_sha256=dump_meta["sha256"] if dump_meta else None,
            )
            return case

    def _clear_staging(self, staging):
        """Remove a staging directory, tolerating read-only contents."""
        if not os.path.isdir(staging):
            return
        for name in os.listdir(staging):
            path = os.path.join(staging, name)
            os.chmod(path, 0o644)
            os.remove(path)
        os.rmdir(staging)

    def _write_dump(self, case_dir, dump):
        """Persist a dump attachment; returns its metadata record."""
        if not isinstance(dump, MemoryDump):
            raise ServiceError(
                "dump attachment must be a MemoryDump, got %s"
                % type(dump).__name__
            )
        blob = pickle.dumps({
            "image": dump.image,
            "os_name": dump.os_name,
            "symbols": dump.symbols,
            "guest_state": dump.guest_state,
            "taken_at": dump.taken_at,
            "label": dump.label,
        })
        path = os.path.join(case_dir, "dump.pkl")
        with open(path, "wb") as handle:
            handle.write(blob)
        os.chmod(path, 0o444)
        return {
            "bytes": len(blob),
            "image_bytes": len(dump.image),
            "sha256": hashlib.sha256(blob).hexdigest(),
            "os_name": dump.os_name,
            "label": dump.label,
            "taken_at": dump.taken_at,
        }

    def _write_case_json(self, case_dir, case):
        # Atomic replace: workers read case records without the vault
        # lock, so a concurrent reader must see the old record or the
        # new one — never a torn in-place write.
        path = os.path.join(case_dir, "case.json")
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(case, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # -- reading -----------------------------------------------------------

    def case_ids(self):
        """Stored case IDs, in ingest order."""
        cases = [self.case(case_id) for case_id in
                 sorted(os.listdir(self.cases_dir))
                 if _CASE_ID_RE.match(case_id)]
        cases.sort(key=lambda case: case["ingested_seq"])
        return [case["case_id"] for case in cases]

    def case(self, case_id):
        """The ``crimes-case/1`` record (metadata + attached reports)."""
        path = os.path.join(self._case_dir(case_id), "case.json")
        try:
            with open(path, "r") as handle:
                return json.load(handle)
        except FileNotFoundError:
            raise CaseNotFoundError(case_id) from None

    def cases(self):
        """Every case record, in ingest order."""
        return [self.case(case_id) for case_id in self.case_ids()]

    def bundle(self, case_id):
        """The stored (already-validated) incident bundle."""
        path = os.path.join(self._case_dir(case_id), "bundle.json")
        try:
            with open(path, "r") as handle:
                return json.load(handle)
        except FileNotFoundError:
            raise CaseNotFoundError(case_id) from None

    def load_dump(self, case_id):
        """Rehydrate the case's dump attachment (None if it has none).

        The stored blob is re-hashed against the sha256 recorded at
        ingest before a single plugin touches it — evidence is verified
        every time it crosses back out of storage, not just in.
        """
        case = self.case(case_id)
        meta = case.get("dump")
        if meta is None:
            return None
        path = os.path.join(self._case_dir(case_id), "dump.pkl")
        with open(path, "rb") as handle:
            blob = handle.read()
        digest = hashlib.sha256(blob).hexdigest()
        if digest != meta["sha256"]:
            raise VaultIntegrityError(
                "dump for %s fails re-verification: stored sha256 %s, "
                "recorded %s" % (case_id, digest, meta["sha256"])
            )
        data = pickle.loads(blob)
        return MemoryDump(
            image=data["image"], os_name=data["os_name"],
            symbols=data["symbols"], guest_state=data["guest_state"],
            taken_at=data["taken_at"], label=data["label"],
        )

    # -- enrichment --------------------------------------------------------

    def attach_report(self, case_id, report):
        """Attach one worker report to a case (evidence stays untouched).

        Reports land in ``case.json`` sorted by ``job_id`` — the queue's
        seeded-deterministic ordering — never in ``bundle.json``, which
        remains byte-identical to what was ingested.
        """
        if "job_id" not in report:
            raise ServiceError("report needs a job_id to be attachable")
        with self._lock:
            case = self.case(case_id)
            if any(existing["job_id"] == report["job_id"]
                   for existing in case["reports"]):
                raise ServiceError(
                    "case %s already has a report for %s"
                    % (case_id, report["job_id"])
                )
            case["reports"].append(report)
            case["reports"].sort(key=lambda entry: entry["job_id"])
            case["state"] = "enriched"
            self._write_case_json(self._case_dir(case_id), case)
            self._audit_append(
                "vault.report", case_id=case_id, job_id=report["job_id"],
                report_kind=report.get("kind"),
                virtual_cost_ms=report.get("virtual_cost_ms"),
            )
            return case

    # -- cross-case query --------------------------------------------------

    def findings(self, module=None, since=None, tenant=None):
        """Query findings across every case, causally ordered.

        ``module`` matches the detector module name (underscores and
        hyphens are interchangeable: ``syscall_table`` finds the
        ``syscall-table`` module); ``since`` is a virtual-time lower
        bound in ms; ``tenant`` filters to one tenant. Rows are ordered
        by ``(t_ms, tenant, seq)`` — the same deterministic causal order
        the fleet merge uses.
        """
        wanted = _normalize_module(module) if module is not None else None
        rows = []
        for case_id in self.case_ids():
            for row in _finding_rows(case_id, self.bundle(case_id)):
                if wanted is not None and (
                        row["module"] is None
                        or _normalize_module(row["module"]) != wanted):
                    continue
                if since is not None and (row["t_ms"] is None
                                          or row["t_ms"] < since):
                    continue
                if tenant is not None and row["tenant"] != tenant:
                    continue
                rows.append(row)
        rows.sort(key=_row_order)
        return rows

    # -- accounting --------------------------------------------------------

    def stats(self):
        # One locked snapshot: the reject counter, audit sequence, and
        # audit head move together under ingest; reading them unlocked
        # can tear (a head that does not match the sequence).
        with self._lock:
            cases = self.cases()
            return {
                "cases": len(cases),
                "rejects": self.rejects,
                "reports": sum(len(case["reports"]) for case in cases),
                "dumps": sum(1 for case in cases if case["dump"]),
                "audit_entries": self._audit_seq,
                "audit_head": self._audit_head,
            }
