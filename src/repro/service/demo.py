"""``--demo-fleet``: a canned multi-tenant run that populates the vault.

Everything a reviewer needs to exercise the control plane end to end —
ingest, cross-tenant queries, SLO burn, forensics jobs, ``/metrics`` —
without first writing a driver script: a small CloudHost fleet where a
third of the tenants run the §5-style kernel rootkit (caught by the
syscall-table detector), a third run the heap-overflow case study
(caught by the canary scan), and the rest stay clean. Every incident
bundle lands in the vault with a live memory dump attached, so worker
jobs have real evidence to analyze.

Deterministic by construction: tenant seeds derive from
``(seed, tenant-name)``, so the same arguments produce the same case
IDs, the same findings, and the same dashboard.
"""

from repro.core.cloud import CloudHost
from repro.core.config import CrimesConfig
from repro.detectors.canary import CanaryScanModule
from repro.detectors.syscall_table import SyscallTableModule
from repro.forensics.dumps import MemoryDump
from repro.guest.linux import LinuxGuest
from repro.sim.rng import derive_seed
from repro.workloads.attacks import OverflowAttackProgram, RootkitProgram
from repro.workloads.kvstore import KeyValueStoreProgram


def build_demo_host(tenants=6, seed=0, interval_ms=20.0,
                    memory_bytes=2 * 1024 * 1024):
    """A CloudHost with a rootkit / overflow / clean tenant mix."""
    host = CloudHost(name="demo-host")
    for index in range(tenants):
        name = "tenant-%02d" % index
        tenant_seed = derive_seed(seed, name)
        vm = LinuxGuest(name=name, memory_bytes=memory_bytes,
                        seed=tenant_seed)
        # auto_respond off: the whole point of this control plane is
        # that analysis happens *asynchronously* in the service's worker
        # queue, not inline in the epoch loop.
        config = CrimesConfig(epoch_interval_ms=interval_ms,
                              seed=tenant_seed, auto_respond=False)
        programs = [KeyValueStoreProgram(seed=tenant_seed)]
        role = index % 3
        if role == 0:
            programs.append(RootkitProgram(trigger_epoch=2 + index % 3))
        elif role == 1:
            programs.append(OverflowAttackProgram(
                trigger_epoch=3 + index % 3))
        host.admit(vm, config,
                   modules=[SyscallTableModule(), CanaryScanModule()],
                   programs=programs)
    return host


def run_demo_fleet(vault, tenants=6, rounds=10, seed=0, interval_ms=20.0):
    """Run the demo fleet and ingest its incidents; returns a summary.

    The returned ``host`` stays live (attach it to the service for
    ``/slo`` and the ``fleet.*`` section of ``/metrics``); ``cases``
    lists the vault case IDs the run produced, one per attacked tenant.
    """
    host = build_demo_host(tenants=tenants, seed=seed,
                           interval_ms=interval_ms)
    host.run(rounds)
    cases = []
    for name, bundle in sorted(host.incident_bundles().items()):
        crimes = host.tenant(name)
        dump = MemoryDump.from_vm(crimes.vm, label="incident:%s" % name)
        case = vault.ingest(bundle, dump=dump, source="demo-fleet")
        cases.append(case["case_id"])
    return {
        "host": host,
        "cases": cases,
        "tenants": tenants,
        "rounds": rounds,
        "incidents": sorted(host.incident_bundles()),
    }
