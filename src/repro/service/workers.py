"""Asynchronous forensics workers for the case vault.

§5.3's measurement is the whole reason this queue exists: a Volatility
pass costs seconds (≈2.5 s init + ≈500 ms per plugin), which is far too
slow to run inline on an ingest path that must keep up with a fleet.
The service therefore ingests first (cheap: hash-chain re-derivation)
and enriches later — jobs run ``repro.forensics`` plugins against the
case's stored memory dump on worker threads and attach their reports to
the case record.

Determinism survives the thread pool: each job seeds its *own*
:class:`~repro.forensics.volatility.VolatilityFramework` from
``derive_seed(queue_seed, job_id)``, and the vault stores reports sorted
by job ID — so the enriched case set is a pure function of (evidence,
seed) no matter how the OS interleaves the workers. The queue itself
never reads the wall clock; plugin costs are the framework's virtual
milliseconds.
"""

import json
import threading

from repro.errors import (
    CaseNotFoundError,
    ForensicsError,
    ServiceError,
    VaultIntegrityError,
)
from repro.forensics.volatility import VolatilityFramework
from repro.sim.rng import derive_seed

#: Plugins a job runs when the caller does not pick its own set.
DEFAULT_PLUGINS = (
    "linux_pslist",
    "linux_psxview",
    "linux_lsmod",
    "linux_check_syscall",
)

_sanitize = json.JSONEncoder(sort_keys=True, default=str).encode


def _json_safe(value):
    """Round-trip through JSON so reports always fit in case.json."""
    return json.loads(_sanitize(value))


def _triage_report(bundle):
    """The dump-less fallback: triage the bundle itself."""
    flight = bundle["flight"]
    kinds = {}
    for event in flight["events"]:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    return {
        "reason": bundle["reason"],
        "incident_epoch": bundle["incident_epoch"],
        "flight_events": len(flight["events"]),
        "event_kinds": dict(sorted(kinds.items())),
        "detection_findings": len(
            (bundle.get("detection") or {}).get("findings", ())),
        "epoch_chain": len(bundle["epoch_chain"]),
    }


class ForensicsWorkerQueue:
    """A threaded, seed-deterministic job queue over a :class:`CaseVault`."""

    def __init__(self, vault, workers=2, seed=0, plugins=DEFAULT_PLUGINS):
        if workers < 1:
            raise ServiceError("worker queue needs at least one worker")
        self.vault = vault
        self.seed = seed
        self.plugins = tuple(plugins)
        self.workers = workers
        self._cond = threading.Condition()
        self._jobs = []
        self._next_job = 0
        self._active = 0
        self._stopping = False
        self.completed = 0
        self.failed = 0
        self.last_error = None
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name="forensics-worker-%d" % index,
                             daemon=True)
            for index in range(workers)
        ]

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        for thread in self._threads:
            if not thread.is_alive():
                thread.start()
        return self

    def stop(self):
        """Drain nothing; wake every worker and join them."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            if thread.is_alive():
                thread.join()

    # -- enqueue / drain ---------------------------------------------------

    def enqueue(self, case_id, plugins=None):
        """Queue one enrichment job; returns its job ID.

        The job ID is assigned at enqueue time — it names the job's RNG
        stream and its slot in the case's sorted report list, which is
        what keeps the output independent of worker interleaving.
        """
        self.vault.case(case_id)  # fail fast: CaseNotFoundError
        with self._cond:
            if self._stopping:
                raise ServiceError("worker queue is stopped")
            job_id = "job-%04d" % self._next_job
            self._next_job += 1
            self._jobs.append({
                "job_id": job_id,
                "case_id": case_id,
                "plugins": tuple(plugins) if plugins else self.plugins,
            })
            self._cond.notify()
        return job_id

    def drain(self, timeout_ms=60000.0):
        """Block until every queued job has completed (or raise).

        The deadline is enforced by bounded condition waits, not by
        reading a clock — ``timeout_ms`` is an upper bound, not a
        measurement. Only waits that actually time out spend the
        budget: workers notify after every job, and a wait cut short
        by a completion (or a spurious wakeup) consumed almost none of
        its tick.
        """
        tick_s = 0.05
        remaining = max(1, int(timeout_ms / (tick_s * 1000.0)))
        with self._cond:
            while self._jobs or self._active:
                if remaining <= 0:
                    raise ServiceError(
                        "worker queue failed to drain: %d queued, %d "
                        "active" % (len(self._jobs), self._active)
                    )
                if not self._cond.wait(tick_s):
                    remaining -= 1
            # Still inside the condition: the counters must be read in
            # the same critical section that observed the queue empty,
            # or a racing job can tear the completed/failed pair.
            return {"completed": self.completed, "failed": self.failed}

    # -- the workers -------------------------------------------------------

    def _worker_loop(self):
        while True:
            with self._cond:
                while not self._jobs and not self._stopping:
                    self._cond.wait(0.05)
                if self._stopping and not self._jobs:
                    return
                job = self._jobs.pop(0)
                self._active += 1
            try:
                self._run_job(job)
            except ServiceError as err:
                # The job already counted itself as failed; the worker
                # must survive to take the next one.
                with self._cond:
                    self.last_error = str(err)
            finally:
                with self._cond:
                    self._active -= 1
                    self._cond.notify_all()

    def _run_job(self, job):
        report = {
            "job_id": job["job_id"],
            "seed": derive_seed(self.seed, job["job_id"]),
            "status": "ok",
        }
        try:
            dump = self.vault.load_dump(job["case_id"])
            if dump is None:
                report["kind"] = "bundle-triage"
                report["triage"] = _triage_report(
                    self.vault.bundle(job["case_id"]))
                report["virtual_cost_ms"] = 0.0
            else:
                report["kind"] = "volatility"
                report.update(self._analyze(report["seed"], dump,
                                            job["plugins"]))
        except (CaseNotFoundError, VaultIntegrityError,
                ForensicsError) as err:
            # A failed job is still a report: the verdict "this case's
            # evidence would not analyze" is itself case material.
            report["status"] = "error"
            report["error"] = {"type": type(err).__name__,
                               "message": str(err)}
        try:
            self.vault.attach_report(job["case_id"], _json_safe(report))
        except (CaseNotFoundError, ServiceError) as err:
            with self._cond:
                self.failed += 1
            raise ServiceError(
                "job %s could not attach its report: %s"
                % (job["job_id"], err)
            ) from err
        with self._cond:
            if report["status"] == "ok":
                self.completed += 1
            else:
                self.failed += 1

    def _analyze(self, seed, dump, plugins):
        """One seeded Volatility pass; plugin outcomes + virtual cost."""
        framework = VolatilityFramework(seed=seed)
        results = {}
        for name in plugins:
            rows = framework.run(name, dump)
            results[name] = {
                "rows": len(rows),
                "sample": _json_safe(rows[:3]),
            }
        return {
            "os_name": dump.os_name,
            "dump_label": dump.label,
            "dump_taken_at": dump.taken_at,
            "plugins": results,
            "virtual_cost_ms": framework.take_cost_ms(),
        }

    # -- accounting --------------------------------------------------------

    def stats(self):
        with self._cond:
            return {
                "workers": self.workers,
                "enqueued": self._next_job,
                "pending": len(self._jobs) + self._active,
                "completed": self.completed,
                "failed": self.failed,
            }
