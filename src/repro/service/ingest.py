"""One validator for every ingest path (CLI, vault, HTTP).

The trust model is CloRoFor's: evidence is only as good as the check
performed where it *crosses a boundary*. An incident bundle's rolling
SHA-256 flight chain and causal epoch chain are therefore re-derived
here — at the service edge — not trusted from the producer; a tampered,
truncated, or mis-headed artifact is rejected with a typed
:class:`~repro.errors.IngestError` before it can touch the vault.

``crimes-repro incident --validate <bundle.json>`` runs exactly this
module, so the CLI verdict and the vault's ingest decision can never
disagree about the same file.
"""

import json

from repro.errors import IngestError, ObservabilityError
from repro.obs.fleet_merge import verify_merged_chains
from repro.obs.incident import validate_incident_bundle

#: Rejection codes this boundary can emit (documented for API consumers).
INGEST_ERROR_CODES = (
    "not-json",            # the payload is not parseable JSON
    "not-a-bundle",        # parsed, but not a JSON object
    "missing-keys",        # required crimes-obs/2 keys absent
    "schema-mismatch",     # schema tag is not crimes-obs/2
    "hash-chain-broken",   # re-derived flight chain != recorded chain
    "epoch-chain-empty",   # no causal epoch chain at all
    "epoch-chain-truncated",    # chain unordered or cut before the incident
    "epoch-chain-out-of-ring",  # chain references evicted/forged events
    "fleet-chain-mismatch",     # merged export's per-tenant heads don't hold
    "duplicate-case",      # vault already holds this content-derived case
)


def validate_bundle(bundle):
    """Validate one ``crimes-obs/2`` bundle; typed rejection on failure.

    Wraps :func:`~repro.obs.incident.validate_incident_bundle` — the
    exact validator the producer side uses — and converts its verdict
    into the service's :class:`~repro.errors.IngestError` vocabulary.
    Returns the (trusted-after-this) bundle.
    """
    try:
        return validate_incident_bundle(bundle)
    except ObservabilityError as err:
        raise IngestError(getattr(err, "code", "not-a-bundle"),
                          str(err)) from err


def load_bundle_file(path):
    """Read and validate an on-disk bundle file (the CLI/ops ingest path).

    Returns the validated bundle. A file that is not JSON rejects with
    code ``not-json``; everything else flows through
    :func:`validate_bundle` unchanged.
    """
    try:
        with open(path, "r") as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError) as err:
        raise IngestError(
            "not-json", "%s is not parseable JSON: %s" % (path, err)
        ) from err
    return validate_bundle(payload)


def case_id_for(bundle):
    """Content-derived case ID: the flight chain head names the case.

    The head hash covers every journaled event of the incident, so two
    bundles share a case ID exactly when they carry the same evidence —
    which is what makes duplicate-ingest rejection a *tamper* control
    (an attacker cannot shadow an existing case with altered evidence;
    altering anything moves the head).
    """
    return "case-%s" % bundle["flight"]["head_hash"][:16]


def verify_fleet_export(merged):
    """Validate a fleet-merge flight export at the service boundary.

    ``merged`` is a :func:`~repro.obs.fleet_merge.merge_flight_snapshots`
    payload. Each tenant's chain is split back out of the merged stream
    and re-derived against its declared head; any mismatch rejects the
    whole export with code ``fleet-chain-mismatch`` (a fleet timeline
    with one forged tenant is not evidence). Returns the verification
    summary on success.
    """
    verdict = verify_merged_chains(merged)
    if not verdict["ok"]:
        raise IngestError("fleet-chain-mismatch",
                          "fleet export rejected: %s" % verdict["error"])
    return verdict
