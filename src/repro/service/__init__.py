"""The incident case service: an evidence control plane over CloudHost.

CRIMES produces *evidence* — ``crimes-obs/2`` incident bundles, SLO
watchdog trails, fleet-merge exports — but a library that drops JSON
blobs on local disk is not a system a provider can operate. Following
CloRoFor's argument (PAPERS.md) that cloud forensic evidence must land
in a tamper-evident store whose integrity is *re-verified on ingest*,
this package turns the reproduction into a deployable control plane:

* :mod:`repro.service.ingest` — the single validator every ingest path
  (CLI, vault, HTTP) shares: hash chains and causal epoch chains are
  re-derived at the service boundary, and rejections carry typed codes.
* :mod:`repro.service.vault` — the case vault: content-addressed,
  read-only case storage with an append-only, hash-chained audit log.
* :mod:`repro.service.workers` — a threaded worker queue running
  ``repro.forensics`` plugins asynchronously against stored dumps,
  attaching reports to cases in seeded-deterministic order.
* :mod:`repro.service.sloboard` — the fleet SLO dashboard: per-tenant
  and per-host burn summaries from watchdog trails and fleet rollups.
* :mod:`repro.service.http` — a stdlib ``ThreadingHTTPServer`` control
  plane: ``/cases``, ``/findings``, ``/slo``, ``/metrics``, ``/audit``,
  ``/jobs``; this is the one explicitly *real* (wall-clock) layer.
* :mod:`repro.service.demo` — ``--demo-fleet`` self-population: a
  canned multi-tenant CloudHost run whose incidents land in the vault.
"""

from repro.service.http import CaseService  # noqa: F401
from repro.service.ingest import (  # noqa: F401
    case_id_for,
    load_bundle_file,
    validate_bundle,
    verify_fleet_export,
)
from repro.service.sloboard import build_slo_dashboard  # noqa: F401
from repro.service.vault import CASE_SCHEMA, CaseVault  # noqa: F401
from repro.service.workers import ForensicsWorkerQueue  # noqa: F401
