"""The safety invariant, checked against flight-recorder evidence.

CRIMES's guarantee is that **no output emitted during an epoch that was
never audited clean escapes** — under attack, and equally under faults
in the protection machinery itself. The chaos suite does not trust the
epoch loop's own return values to prove this; it re-derives the
invariant from the flight journal, the same tamper-evident artifact an
incident bundle ships.

The derivation reads three event families:

* ``scan.verdict`` (synchronous audits only) — which epochs were
  audited, and whether they came back clean;
* ``buffer.release`` — which epochs' outputs actually reached the
  downstream sink (the buffer stamps every batch with the epochs it
  contains);
* ``buffer.discard`` — which epochs' outputs were destroyed.

An epoch's outputs may be released only if that epoch has a clean
synchronous verdict and was never discarded first.
"""


def _iter_payloads(events):
    for event in events:
        if isinstance(event, dict):
            yield event
        else:  # FlightEvent
            yield event.payload()


def check_safety_invariant(events, require_audit=True):
    """Check the no-unaudited-release invariant over a flight journal.

    ``events`` is a sequence of :class:`~repro.obs.flight.FlightEvent`
    objects or their dict payloads (e.g. from an incident bundle or a
    chaos artifact). Returns a plain-data verdict::

        {"ok": bool, "violations": [...], "released_epochs": [...],
         "clean_epochs": [...], "discarded_epochs": [...]}

    With ``require_audit=False``, releases of never-audited epochs are
    tolerated (a scan-disabled run has no verdicts at all); releases of
    epochs whose audit *failed* or whose outputs were already discarded
    are violations regardless.
    """
    clean = set()
    attacked = set()
    discarded = set()
    released = set()
    violations = []
    for payload in _iter_payloads(events):
        kind = payload["kind"]
        attrs = payload.get("attrs") or {}
        if kind == "scan.verdict" and not attrs.get("async_scan"):
            epoch = payload.get("epoch")
            if attrs.get("attack"):
                attacked.add(epoch)
            else:
                clean.add(epoch)
        elif kind == "buffer.discard":
            discarded.update(attrs.get("epochs") or [])
        elif kind == "buffer.release":
            for epoch in attrs.get("epochs") or []:
                released.add(epoch)
                if epoch in attacked:
                    violations.append(
                        "epoch %s released after a failed audit" % epoch)
                elif epoch in discarded:
                    violations.append(
                        "epoch %s released after its outputs were "
                        "discarded" % epoch)
                elif epoch is None:
                    # Pre-speculation outputs (emitted before the first
                    # epoch stamp, e.g. while seeding at start()): they
                    # predate the initial backup and no audit covers
                    # them, so a release is legitimate — but a release
                    # after a discard (above) never is.
                    continue
                elif epoch not in clean and require_audit:
                    violations.append(
                        "epoch %s released without a clean audit verdict"
                        % epoch)
    return {
        "ok": not violations,
        "violations": violations,
        # A release batch can carry epoch=None entries (outputs emitted
        # before the first epoch stamp); keep the sort total anyway.
        "released_epochs": sorted(released, key=lambda e: (e is None, e)),
        "clean_epochs": sorted(clean),
        "discarded_epochs": sorted(discarded),
    }
