"""Named fault planes: the substrate seams where faults can be injected.

Each plane names one seam of the CRIMES substrate whose failure the
framework must survive *safely* — a stalled copy, a slow introspection
read, or a lost backup sync must degrade into a retry, a rollback, or a
held buffer, never into a silent release of unaudited output. The
injector (``repro.faults.injector``) arms planes per epoch from a
:class:`~repro.faults.plan.FaultPlan`; the consumer that owns each seam
asks the injector whether its plane is faulting and runs its recovery
policy (retry/backoff, escalation, or degraded mode).
"""

import enum


class FaultPlane(enum.Enum):
    """One injectable seam of the checkpoint/audit/buffer machinery."""

    #: The memcpy stage of the checkpoint pipeline: dirty-page staging
    #: stalls or fails. Recovery: bounded retry with backoff (the recopy
    #: cost is charged to the ``copy`` pause phase); exhaustion escalates
    #: to a synchronous rollback of the epoch.
    CHECKPOINT_COPY = "checkpoint_copy"

    #: The dirty-bitmap harvest (``XEN_DOMCTL_SHADOW_OP_CLEAN``): the
    #: read-and-reset stalls. Recovery: retry *before* the bitmap is
    #: cleared, so an exhausted harvest never loses the dirty set.
    BITMAP_HARVEST = "bitmap_harvest"

    #: VMI reads during the audit run slow (``mode="latency"``) or
    #: return garbage (``mode="corrupt"``, surfacing as an
    #: ``IntrospectionError`` mid-audit). An audit that cannot complete
    #: is *inconclusive*: the epoch is rolled back, never released.
    VMI_READ = "vmi_read"

    #: The end-of-epoch audit exceeds its per-epoch budget. Timeouts
    #: escalate to a synchronous rollback — a stalled scanner must not
    #: hold outputs hostage forever, and must never release them.
    AUDIT_TIMEOUT = "audit_timeout"

    #: The downstream sink rejects the buffer flush at release time.
    #: Recovery: bounded retry; exhaustion parks the epoch's outputs in
    #: the buffer (degraded hold) until a later flush succeeds or the
    #: hold budget is exhausted and the outputs are shed.
    NETBUF_RELEASE = "netbuf_release"

    #: The commit-time synchronization to the (possibly remote) backup
    #: is lost. Recovery: retry; exhaustion keeps the epoch staged and
    #: holds its outputs (Synchronous Safety ties release to a durable
    #: backup), shedding + rolling back if the outage persists.
    BACKUP_SYNC = "backup_sync"

    #: The virtual clock skews forward at an epoch boundary (a stalled
    #: hypervisor scheduler). No recovery needed — but the skew must be
    #: deterministic, journaled, and visible in the metrics.
    CLOCK_SKEW = "clock_skew"

    #: The checkpoint store's spill tier (disk) stalls or fails. A spill
    #: *write* that exhausts its retries degrades to in-memory retention
    #: (the page stays resident past the budget — never lost); a spill
    #: *read* that exhausts its retries surfaces as a
    #: :class:`~repro.errors.StoreIOError` and escalates to the epoch
    #: loop's synchronous rollback, exactly like a failed copy.
    STORE_IO = "store_io"


#: Every plane, in declaration order (the chaos matrix iterates this).
ALL_PLANES = tuple(FaultPlane)
