"""Fault plans: which planes fault, when, and how hard.

A :class:`FaultPlan` maps fault planes to :class:`FaultSchedule`\\ s and
carries the root seed every injection decision derives from. Two runs
with the same plan (and the same workload seed) make bit-identical
injection decisions — chaos runs are replayable evidence, not noise.
"""

from repro.errors import FaultPlanError
from repro.faults.planes import FaultPlane


class ScheduleKind:
    """The three temporal shapes of the chaos matrix."""

    #: Each epoch independently faults with ``probability``; the fault
    #: clears after ``fail_attempts`` failed tries (a retry recovers it).
    TRANSIENT = "transient"

    #: Every epoch from ``start_epoch`` on faults, and no retry ever
    #: succeeds — the consumer's escalation/degraded path must engage.
    PERSISTENT = "persistent"

    #: A contiguous window ``[start_epoch, start_epoch + duration)`` of
    #: faulting epochs; within the window each epoch behaves like a
    #: transient fault (retries recover after ``fail_attempts`` tries).
    BURST = "burst"

    ALL = (TRANSIENT, PERSISTENT, BURST)


class FaultSchedule:
    """When one plane faults, and how the fault behaves when probed."""

    __slots__ = ("kind", "probability", "start_epoch", "duration",
                 "fail_attempts", "magnitude_ms", "mode")

    def __init__(self, kind, probability=0.0, start_epoch=1, duration=1,
                 fail_attempts=1, magnitude_ms=1.0, mode="fail"):
        if kind not in ScheduleKind.ALL:
            raise FaultPlanError("unknown schedule kind %r (known: %s)"
                              % (kind, ", ".join(ScheduleKind.ALL)))
        if not 0.0 <= probability <= 1.0:
            raise FaultPlanError("probability must be in [0, 1]")
        if start_epoch < 1:
            raise FaultPlanError("start_epoch must be >= 1")
        if duration < 1:
            raise FaultPlanError("duration must be >= 1")
        if fail_attempts < 1:
            raise FaultPlanError("fail_attempts must be >= 1")
        if magnitude_ms < 0:
            raise FaultPlanError("magnitude_ms must be >= 0")
        if mode not in ("fail", "latency", "corrupt"):
            raise FaultPlanError("mode must be 'fail', 'latency' or 'corrupt'")
        self.kind = kind
        self.probability = probability
        self.start_epoch = start_epoch
        self.duration = duration
        self.fail_attempts = fail_attempts
        self.magnitude_ms = magnitude_ms
        self.mode = mode

    # -- constructors --------------------------------------------------------

    @classmethod
    def transient(cls, probability=0.25, fail_attempts=1, magnitude_ms=1.0,
                  mode="fail"):
        return cls(ScheduleKind.TRANSIENT, probability=probability,
                   fail_attempts=fail_attempts, magnitude_ms=magnitude_ms,
                   mode=mode)

    @classmethod
    def persistent(cls, start_epoch=1, magnitude_ms=1.0, mode="fail"):
        return cls(ScheduleKind.PERSISTENT, start_epoch=start_epoch,
                   magnitude_ms=magnitude_ms, mode=mode)

    @classmethod
    def burst(cls, start_epoch=1, duration=2, fail_attempts=1,
              magnitude_ms=1.0, mode="fail"):
        return cls(ScheduleKind.BURST, start_epoch=start_epoch,
                   duration=duration, fail_attempts=fail_attempts,
                   magnitude_ms=magnitude_ms, mode=mode)

    # -- the per-epoch decision ----------------------------------------------

    def faulting(self, stream, epoch):
        """Does this plane fault at ``epoch``?

        ``stream`` is the plane's private seeded stream; only TRANSIENT
        schedules consume randomness (one draw per epoch), so adding a
        deterministic plane to a plan never perturbs another plane.
        """
        if self.kind == ScheduleKind.TRANSIENT:
            return stream.random() < self.probability
        if self.kind == ScheduleKind.PERSISTENT:
            return epoch >= self.start_epoch
        return self.start_epoch <= epoch < self.start_epoch + self.duration

    def attempts_to_fail(self):
        """Failed probes before the fault clears (None = never clears)."""
        if self.kind == ScheduleKind.PERSISTENT:
            return None
        return self.fail_attempts

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self):
        return {
            "kind": self.kind,
            "probability": self.probability,
            "start_epoch": self.start_epoch,
            "duration": self.duration,
            "fail_attempts": self.fail_attempts,
            "magnitude_ms": self.magnitude_ms,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        unknown = set(data) - set(cls.transient().to_dict())
        if unknown:
            raise FaultPlanError("unknown schedule keys: %s"
                              % ", ".join(sorted(unknown)))
        return cls(**data)

    def __repr__(self):
        return ("FaultSchedule(%s, p=%.2f, start=%d, dur=%d, fail=%d, "
                "mag=%.1fms, %s)"
                % (self.kind, self.probability, self.start_epoch,
                   self.duration, self.fail_attempts, self.magnitude_ms,
                   self.mode))


class FaultPlan:
    """A seeded mapping of fault planes to schedules."""

    __slots__ = ("schedules", "seed")

    def __init__(self, schedules=None, seed=0):
        schedules = dict(schedules or {})
        for plane, schedule in schedules.items():
            if not isinstance(plane, FaultPlane):
                raise FaultPlanError("plan keys must be FaultPlane, got %r"
                                  % (plane,))
            if not isinstance(schedule, FaultSchedule):
                raise FaultPlanError("plan values must be FaultSchedule, got %r"
                                  % (schedule,))
        self.schedules = schedules
        self.seed = seed

    @classmethod
    def none(cls, seed=0):
        """The empty plan: hooks installed, nothing ever fires."""
        return cls({}, seed=seed)

    @classmethod
    def single(cls, plane, schedule, seed=0):
        return cls({plane: schedule}, seed=seed)

    @classmethod
    def uniform(cls, schedule_factory, planes=None, seed=0):
        """One independently parameterized schedule per plane.

        ``schedule_factory()`` is called once per plane so mutable
        schedule state (there is none today, but the per-plane streams
        assume independence) is never shared.
        """
        planes = tuple(planes) if planes is not None else tuple(FaultPlane)
        return cls({plane: schedule_factory() for plane in planes},
                   seed=seed)

    @property
    def armed(self):
        return bool(self.schedules)

    def to_dict(self):
        return {
            "seed": self.seed,
            "planes": {plane.value: schedule.to_dict()
                       for plane, schedule in sorted(
                           self.schedules.items(), key=lambda kv: kv[0].value)},
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        unknown = set(data) - {"seed", "planes"}
        if unknown:
            raise FaultPlanError("unknown plan keys: %s"
                              % ", ".join(sorted(unknown)))
        return cls(
            {FaultPlane(name): FaultSchedule.from_dict(schedule)
             for name, schedule in data.get("planes", {}).items()},
            seed=data.get("seed", 0),
        )

    def __repr__(self):
        return "FaultPlan(seed=%d, planes=[%s])" % (
            self.seed,
            ", ".join(sorted(p.value for p in self.schedules)),
        )
