"""The fault injector: one deterministic decision point per seam.

The injector is armed once per epoch (``begin_epoch``) from the plan's
schedules; consumers probe their plane with :meth:`check` on the hot
path. With an empty plan the probe is a dict lookup that always misses —
cheap enough to leave compiled into the epoch loop (the
``BENCH_faults_overhead`` benchmark holds the hooks under 2% of epoch
wall time).

Every injection decision derives from ``SeededStream(plan.seed,
"faults/<plane>")``, so planes are independent and runs are replayable;
every armed fault and every recovery is journaled to the flight
recorder and counted in the metrics registry, so incident bundles and
chaos artifacts capture the full story.
"""

from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.sim.rng import SeededStream


class ActiveFault:
    """One plane's fault for the current epoch.

    ``fires()`` consumes one failure per probe: a transient fault stops
    firing after ``fail_attempts`` probes (a retry loop recovers), a
    persistent fault never stops (the retry budget exhausts and the
    consumer escalates).
    """

    __slots__ = ("plane", "schedule", "epoch", "_remaining")

    def __init__(self, plane, schedule, epoch):
        self.plane = plane
        self.schedule = schedule
        self.epoch = epoch
        self._remaining = schedule.attempts_to_fail()

    @property
    def persistent(self):
        return self._remaining is None

    @property
    def magnitude_ms(self):
        return self.schedule.magnitude_ms

    @property
    def mode(self):
        return self.schedule.mode

    def fires(self):
        """Probe the fault; True while it is still failing."""
        if self._remaining is None:
            return True
        if self._remaining > 0:
            self._remaining -= 1
            return True
        return False

    def __repr__(self):
        return "ActiveFault(%s, epoch=%d, remaining=%s)" % (
            self.plane.value, self.epoch,
            "inf" if self._remaining is None else self._remaining,
        )


class FaultInjector:
    """Per-epoch fault arming + recovery accounting for one tenant."""

    def __init__(self, plan=None, registry=None, flight=None,
                 retry_policy=None):
        self.plan = plan if plan is not None else FaultPlan.none()
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self._flight = flight
        self._registry = registry
        self._streams = {
            plane: SeededStream(self.plan.seed, "faults/%s" % plane.value)
            for plane in self.plan.schedules
        }
        #: plane -> ActiveFault for the epoch being executed. Empty for
        #: an unarmed plan: ``check`` is then a guaranteed-miss lookup.
        self._active = {}
        self.epoch = 0
        self.injected_total = 0
        self.recovered_total = 0
        self.escalated_total = 0
        self._injected_counter = None
        if registry is not None:
            self._injected_counter = registry.counter(
                "faults.injected_total",
                help="fault-plane activations across all planes")
            self._recovered_counter = registry.counter(
                "faults.recovered_total",
                help="faults cleared by retry/backoff")
            self._escalated_counter = registry.counter(
                "faults.escalated_total",
                help="faults that exhausted recovery and escalated")
            self._backoff_hist = registry.histogram(
                "faults.retry_backoff_ms",
                help="total backoff charged per recovery episode")
            self._plane_counters = {
                plane: registry.counter(
                    "faults.%s.injected" % plane.value,
                    help="activations of the %s plane" % plane.value)
                for plane in self.plan.schedules
            }

    @property
    def armed(self):
        return bool(self.plan.schedules)

    # -- per-epoch arming ----------------------------------------------------

    def begin_epoch(self, epoch):
        """Decide, deterministically, which planes fault this epoch."""
        self.epoch = epoch
        if not self.plan.schedules:
            return
        active = {}
        for plane, schedule in self.plan.schedules.items():
            if not schedule.faulting(self._streams[plane], epoch):
                continue
            active[plane] = ActiveFault(plane, schedule, epoch)
            self.injected_total += 1
            if self._injected_counter is not None:
                self._injected_counter.inc()
                self._plane_counters[plane].inc()
            if self._flight is not None:
                self._flight.record(
                    "fault.injected", epoch=epoch, plane=plane.value,
                    schedule=schedule.kind, mode=schedule.mode,
                    magnitude_ms=schedule.magnitude_ms,
                )
        self._active = active

    # -- hot-path probes -----------------------------------------------------

    def check(self, plane):
        """The plane's :class:`ActiveFault` this epoch, or None."""
        return self._active.get(plane)

    def stream(self, plane):
        """The plane's private stream (retry jitter draws from it)."""
        return self._streams[plane]

    # -- recovery accounting (consumers report what they did) ---------------

    def retry(self, fault, site):
        """Run the bounded-retry policy against ``fault``; journal it.

        Returns the :class:`~repro.faults.retry.RetryOutcome`. The
        caller charges ``outcome.backoff_ms`` (plus any redo cost) to
        virtual time and escalates if the outcome failed.
        """
        outcome = self.retry_policy.run(fault, self._streams[fault.plane])
        if outcome.success:
            self.recovered_total += 1
            if self._injected_counter is not None:
                self._recovered_counter.inc()
                self._backoff_hist.observe(outcome.backoff_ms)
            if self._flight is not None:
                self._flight.record(
                    "fault.recovered", epoch=fault.epoch,
                    plane=fault.plane.value, site=site,
                    attempts=outcome.attempts,
                    backoff_ms=outcome.backoff_ms,
                )
        else:
            self.escalated(fault.plane, fault.epoch, site,
                           attempts=outcome.attempts,
                           backoff_ms=outcome.backoff_ms)
        return outcome

    def escalated(self, plane, epoch, site, **attrs):
        """Record that a fault exhausted its recovery at ``site``."""
        self.escalated_total += 1
        if self._injected_counter is not None:
            self._escalated_counter.inc()
        if self._flight is not None:
            self._flight.record(
                "fault.escalated", epoch=epoch, plane=plane.value,
                site=site, **attrs,
            )

    # -- export --------------------------------------------------------------

    def summary(self):
        """Plain-data rollup (chaos CLI artifact / incident bundles)."""
        return {
            "plan": self.plan.to_dict(),
            "injected_total": self.injected_total,
            "recovered_total": self.recovered_total,
            "escalated_total": self.escalated_total,
            "retry_policy": {
                "base_ms": self.retry_policy.base_ms,
                "factor": self.retry_policy.factor,
                "cap_ms": self.retry_policy.cap_ms,
                "max_attempts": self.retry_policy.max_attempts,
                "jitter_frac": self.retry_policy.jitter_frac,
            },
        }
