"""Canned chaos runs: one protected guest driven under a fault plan.

This is the harness the ``crimes-repro chaos`` CLI command and the chaos
test matrix share: build a small CRIMES-protected Linux guest with a web
workload (so the buffer actually carries outputs), run it for a bounded
number of epochs under a :class:`~repro.faults.plan.FaultPlan`, and hand
back the evidence — the flight journal, its hash-chain head, a guest
memory digest, and the safety-invariant verdict derived from the journal
alone.

Everything here is seeded and virtual-time only: the same (seed, plan)
pair reproduces the identical run, byte for byte.
"""

import hashlib

from repro.faults.safety import check_safety_invariant


def build_chaos_crimes(fault_plan=None, seed=0, interval_ms=20.0,
                       max_hold_epochs=3, audit_timeout_ms=None,
                       attack_epoch=None, memory_bytes=4 * 1024 * 1024,
                       store=None):
    """A small protected guest, ready to run under ``fault_plan``.

    ``attack_epoch`` additionally arms a heap-overflow attack program
    (and the canary module that catches it), for exercising the
    attack-under-fault corner of the matrix. ``store`` (a
    :class:`~repro.checkpoint.store.PageStore`) backs the checkpointer
    with the content-addressed page tier — required for the
    ``STORE_IO`` fault plane to have a seam to fire through.
    """
    from repro.core.config import CrimesConfig
    from repro.core.crimes import Crimes
    from repro.detectors import SyscallTableModule
    from repro.guest.linux import LinuxGuest
    from repro.workloads.kvstore import KeyValueStoreProgram
    from repro.workloads.webserver import WebServerWorkload

    vm = LinuxGuest(name="chaos-%d" % seed, memory_bytes=memory_bytes,
                    seed=seed)
    config = CrimesConfig(
        epoch_interval_ms=interval_ms, seed=seed,
        max_hold_epochs=max_hold_epochs,
        audit_timeout_ms=audit_timeout_ms,
    )
    crimes = Crimes(vm, config, fault_plan=fault_plan, store=store)
    crimes.install_module(SyscallTableModule())
    # Two programs: the web profile dirties pages; the kv-store serves
    # query traffic over the NIC, so every epoch has buffered outputs
    # for the release/discard planes to act on.
    crimes.add_program(WebServerWorkload("light", seed=seed))
    crimes.add_program(KeyValueStoreProgram(seed=seed))
    if attack_epoch is not None:
        from repro.detectors.canary import CanaryScanModule
        from repro.workloads.attacks import OverflowAttackProgram

        crimes.install_module(CanaryScanModule())
        crimes.add_program(OverflowAttackProgram(trigger_epoch=attack_epoch))
    crimes.start()
    return crimes


def run_chaos(fault_plan=None, seed=0, epochs=12, interval_ms=20.0,
              max_hold_epochs=3, audit_timeout_ms=None, attack_epoch=None,
              memory_bytes=4 * 1024 * 1024, store=None):
    """Run a chaos scenario end to end; returns the evidence bundle.

    The returned dict::

        {"crimes": Crimes, "events": [payload dicts...],
         "head_hash": str, "memory_sha256": str,
         "safety": check_safety_invariant(...),
         "metrics": crimes.metrics(),
         "store": store.stats() or None}
    """
    crimes = build_chaos_crimes(
        fault_plan=fault_plan, seed=seed, interval_ms=interval_ms,
        max_hold_epochs=max_hold_epochs, audit_timeout_ms=audit_timeout_ms,
        attack_epoch=attack_epoch, memory_bytes=memory_bytes, store=store,
    )
    crimes.run(max_epochs=epochs)
    flight = crimes.observer.flight
    events = [event.payload() for event in flight.events()]
    view = crimes.vm.memory.view()
    try:
        memory_sha256 = hashlib.sha256(view).hexdigest()
    finally:
        view.release()
    return {
        "crimes": crimes,
        "events": events,
        "head_hash": flight.head_hash,
        "memory_sha256": memory_sha256,
        "safety": check_safety_invariant(events),
        "metrics": crimes.metrics(),
        "store": store.stats() if store is not None else None,
    }
