"""Bounded retry with exponential backoff and monotone jitter.

The substrate's transient-fault recovery policy: delays grow
exponentially from ``base_ms`` toward ``cap_ms``, each perturbed by a
*positive* seeded jitter and clamped so the sequence is monotone
non-decreasing — two properties the chaos property suite asserts for
every seed (monotone, and bounded by ``cap_ms * (1 + jitter_frac)``).

Backoff here is *virtual* time: the caller charges the returned
``backoff_ms`` to the phase that stalled, so chaos runs stay
deterministic and the flight journal prices every recovery.
"""

from repro.errors import FaultPlanError


class RetryOutcome:
    """What one bounded-retry episode did."""

    __slots__ = ("success", "attempts", "delays_ms")

    def __init__(self, success, attempts, delays_ms):
        self.success = success
        self.attempts = attempts
        self.delays_ms = list(delays_ms)

    @property
    def failed_attempts(self):
        return self.attempts - 1 if self.success else self.attempts

    @property
    def backoff_ms(self):
        return sum(self.delays_ms)

    def __repr__(self):
        return "RetryOutcome(%s, attempts=%d, backoff=%.3fms)" % (
            "ok" if self.success else "exhausted", self.attempts,
            self.backoff_ms,
        )


class RetryPolicy:
    """Exponential backoff, jittered, bounded, monotone."""

    __slots__ = ("base_ms", "factor", "cap_ms", "max_attempts",
                 "jitter_frac")

    def __init__(self, base_ms=0.5, factor=2.0, cap_ms=8.0, max_attempts=4,
                 jitter_frac=0.25):
        if base_ms <= 0:
            raise FaultPlanError("base_ms must be positive")
        if factor < 1.0:
            raise FaultPlanError("factor must be >= 1")
        if cap_ms < base_ms:
            raise FaultPlanError("cap_ms must be >= base_ms")
        if max_attempts < 1:
            raise FaultPlanError("max_attempts must be >= 1")
        if not 0.0 <= jitter_frac <= 1.0:
            raise FaultPlanError("jitter_frac must be in [0, 1]")
        self.base_ms = base_ms
        self.factor = factor
        self.cap_ms = cap_ms
        self.max_attempts = max_attempts
        self.jitter_frac = jitter_frac

    @property
    def max_delay_ms(self):
        """Hard bound on any single delay the policy can produce."""
        return self.cap_ms * (1.0 + self.jitter_frac)

    def delays(self, stream, count=None):
        """The first ``count`` backoff delays for one retry episode.

        Jitter is additive-positive and the sequence is clamped to its
        running maximum, so it is monotone non-decreasing for *every*
        seed — backoff must never shrink under randomness.
        """
        count = self.max_attempts - 1 if count is None else count
        out = []
        previous = 0.0
        raw = self.base_ms
        for _ in range(max(count, 0)):
            delay = min(raw, self.cap_ms)
            if self.jitter_frac > 0:
                delay *= 1.0 + stream.uniform(0.0, self.jitter_frac)
            delay = max(delay, previous)
            out.append(delay)
            previous = delay
            raw *= self.factor
        return out

    def run(self, fault, stream):
        """Probe ``fault`` until it clears or attempts are exhausted.

        ``fault`` is an :class:`~repro.faults.injector.ActiveFault`;
        each probe consumes one of its failures. Returns a
        :class:`RetryOutcome` whose ``backoff_ms`` the caller charges to
        virtual time.
        """
        delays = []
        attempts = 0
        while True:
            attempts += 1
            if not fault.fires():
                return RetryOutcome(True, attempts, delays)
            if attempts >= self.max_attempts:
                return RetryOutcome(False, attempts, delays)
            delays.append(self._next_delay(stream, delays))

    def _next_delay(self, stream, delays_so_far):
        """The next delay, continuing a monotone episode in progress."""
        index = len(delays_so_far)
        raw = min(self.base_ms * (self.factor ** index), self.cap_ms)
        if self.jitter_frac > 0:
            raw *= 1.0 + stream.uniform(0.0, self.jitter_frac)
        if delays_so_far:
            raw = max(raw, delays_so_far[-1])
        return raw

    def __repr__(self):
        return ("RetryPolicy(base=%.2fms, factor=%.1f, cap=%.2fms, "
                "max_attempts=%d, jitter=%.2f)"
                % (self.base_ms, self.factor, self.cap_ms,
                   self.max_attempts, self.jitter_frac))
