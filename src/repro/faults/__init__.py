"""Deterministic fault injection for the CRIMES substrate.

The protection machinery is only trustworthy if it fails *safe*: this
package injects seeded, replayable faults at every substrate seam
(checkpoint copy, bitmap harvest, VMI reads, audit timeouts, buffer
release, backup sync, clock skew) and gives consumers the recovery
vocabulary — bounded retry/backoff, escalation to synchronous rollback,
and degraded hold-and-shed modes — that the chaos test matrix validates
against the flight-recorder journal.
"""

from repro.faults.injector import ActiveFault, FaultInjector
from repro.faults.plan import FaultPlan, FaultSchedule, ScheduleKind
from repro.faults.planes import ALL_PLANES, FaultPlane
from repro.faults.retry import RetryOutcome, RetryPolicy
from repro.faults.safety import check_safety_invariant

__all__ = [
    "ALL_PLANES",
    "ActiveFault",
    "FaultInjector",
    "FaultPlan",
    "FaultPlane",
    "FaultSchedule",
    "RetryOutcome",
    "RetryPolicy",
    "ScheduleKind",
    "check_safety_invariant",
]
