"""Deep scan modules for asynchronous checkpoint scanning (§5.3).

The paper observes that Volatility-class analyses (~500 ms per scan) are
"infeasible for running synchronously at every checkpoint interval, but
... CRIMES's maintenance of a prior checkpoint means that complex
security tools ... could be used asynchronously on the last checkpoint as
the VM continues to run", and leaves that as future work. This module
family implements it.

A :class:`DeepScanModule` operates on a *memory dump* (the committed
backup), not the live VM, and declares its virtual-time cost so the
asynchronous scanner (``repro.core.async_scan``) can model the scan
running concurrently with further epochs. Detection therefore lags the
evidence by (epochs since the snapshot + the scan duration) — the
weakened guarantee the paper trades for keeping the pause small.
"""

import re

from repro.detectors.base import Finding, ScanModule, Severity
from repro.forensics.dumps import MemoryDump
from repro.forensics.volatility import VolatilityFramework


class DeepScanModule:
    """Base class for offline (dump-based) scan modules."""

    name = "abstract-deep"

    def cost_ms(self, dump):
        """Virtual time this scan occupies on the scanning core."""
        raise NotImplementedError

    def scan(self, dump):
        """Analyze a memory dump; return a list of Findings."""
        raise NotImplementedError


class SynchronousDeepAdapter(ScanModule):
    """Run a deep module *synchronously* at every audit (the strawman).

    This is what the paper argues against for Volatility-class scans: the
    full scan cost lands inside the VM's pause, every epoch. It exists so
    the ablation benchmark can quantify exactly what asynchronous
    scanning buys.
    """

    guest_aided = False

    def __init__(self, deep_module):
        self.deep_module = deep_module
        self.name = "sync[%s]" % deep_module.name

    def scan(self, context):
        dump = MemoryDump.from_vm(context.vmi.vm, label="sync-deep")
        context.vmi._charge_ms(self.deep_module.cost_ms(dump))
        return self.deep_module.scan(dump)


class HiddenProcessDeepScan(DeepScanModule):
    """Volatility psxview / linux_psxview over the checkpoint dump.

    Catches DKOM-hidden processes without any per-epoch live scanning.
    """

    name = "deep-psxview"

    def __init__(self, volatility=None, seed=0):
        self.volatility = (
            volatility if volatility is not None else VolatilityFramework(seed)
        )
        self.volatility.take_cost_ms()  # init cost handled by the scanner

    @staticmethod
    def _plugin_for(dump):
        return "psxview" if dump.os_name == "windows" else "linux_psxview"

    def cost_ms(self, dump):
        # One pool-scanning plugin run, priced by dump size.
        from repro.forensics import volatility as vol

        return vol.PLUGIN_RUN_MS + vol.POOL_SCAN_PER_MIB_MS * (
            dump.size / float(1 << 20)
        )

    def scan(self, dump):
        rows = self.volatility.run(self._plugin_for(dump), dump)
        self.volatility.take_cost_ms()  # cost already modeled via cost_ms
        findings = []
        for row in rows:
            if row.get("suspicious"):
                findings.append(
                    Finding(
                        self.name,
                        "hidden-process",
                        Severity.CRITICAL,
                        "checkpoint scan: process %r (pid %d) hidden from "
                        "the canonical process list"
                        % (row["name"], row["pid"]),
                        {"pid": row["pid"], "name": row["name"],
                         "start_time": row.get("start_time", 0)},
                    )
                )
        return findings


#: Byte signatures a full-memory sweep looks for (virus-scanner style).
DEFAULT_MEMORY_SIGNATURES = (
    ("eicar", re.compile(
        rb"X5O!P%@AP\[4\\PZX54\(P\^\)7CC\)7\}\$EICAR")),
    ("meterpreter", re.compile(rb"METERPRETER_STAGE2")),
    ("cryptominer", re.compile(rb"stratum\+tcp://")),
)


class SignatureSweepModule(DeepScanModule):
    """Full-RAM signature sweep over the checkpoint dump.

    The classic virus-scanner approach, made safe by running it against
    an immutable checkpoint instead of a moving target.
    """

    name = "deep-signatures"

    #: Virtual milliseconds to sweep one MiB of RAM.
    SWEEP_PER_MIB_MS = 35.0

    def __init__(self, signatures=None):
        self.signatures = tuple(signatures or DEFAULT_MEMORY_SIGNATURES)

    def cost_ms(self, dump):
        return self.SWEEP_PER_MIB_MS * (dump.size / float(1 << 20))

    def scan(self, dump):
        findings = []
        for label, pattern in self.signatures:
            match = pattern.search(dump.image)
            if match:
                findings.append(
                    Finding(
                        self.name,
                        "memory-signature",
                        Severity.CRITICAL,
                        "checkpoint sweep: signature %r found at paddr 0x%x"
                        % (label, match.start()),
                        {"signature": label, "paddr": match.start(),
                         "excerpt": match.group(0)[:32]},
                    )
                )
        return findings
