"""Outgoing-packet signature scan (unaided; §3.2: "a security module could
focus on the outputs of the VM, e.g., scanning outgoing network packets
for suspicious content").

Because CRIMES buffers all outputs during an epoch, this module can audit
the *entire* epoch's traffic before any byte leaves the host — a scanner
placement no in-guest tool can match.
"""

import re

from repro.detectors.base import Finding, ScanModule, Severity

#: Default signatures: exfiltration markers and card-number-shaped data.
DEFAULT_SIGNATURES = (
    ("exfil-marker", re.compile(rb"EXFIL|BEGIN_DUMP")),
    ("card-number", re.compile(rb"\b(?:\d[ -]?){15}\d\b")),
    ("private-key", re.compile(rb"-----BEGIN (?:RSA )?PRIVATE KEY-----")),
)


class OutputSignatureModule(ScanModule):
    """Scan the epoch's buffered outgoing packets for signatures."""

    name = "output-signatures"
    guest_aided = False

    #: Virtual µs to scan one payload byte.
    PER_BYTE_US = 0.002

    def __init__(self, signatures=None):
        self.signatures = tuple(signatures or DEFAULT_SIGNATURES)

    def scan(self, context):
        if context.output_buffer is None:
            return []
        findings = []
        scanned_bytes = 0
        for packet in context.output_buffer.peek_packets():
            scanned_bytes += len(packet.payload)
            for label, pattern in self.signatures:
                match = pattern.search(packet.payload)
                if match:
                    findings.append(
                        Finding(
                            self.name,
                            "suspicious-output",
                            Severity.CRITICAL,
                            "outgoing packet to %s matches signature %r"
                            % (packet.dst, label),
                            {
                                "dst": packet.dst,
                                "signature": label,
                                "excerpt": match.group(0)[:64],
                            },
                        )
                    )
                    break
        context.vmi._charge_us(self.PER_BYTE_US * scanned_bytes)
        return findings
