"""Detector framework: scan modules, findings, and the orchestrator."""

import enum


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


class Finding:
    """One piece of evidence a scan module discovered."""

    __slots__ = ("module", "kind", "severity", "summary", "details")

    def __init__(self, module, kind, severity, summary, details=None):
        self.module = module
        self.kind = kind
        self.severity = severity
        self.summary = summary
        self.details = dict(details or {})

    def __repr__(self):
        return "Finding(%s/%s: %s)" % (self.module, self.kind, self.summary)


class ScanContext:
    """Everything a module may consult during one end-of-epoch audit."""

    __slots__ = ("vmi", "dirty_pfns", "output_buffer", "epoch", "now_ms")

    def __init__(self, vmi, dirty_pfns=None, output_buffer=None, epoch=0,
                 now_ms=0.0):
        self.vmi = vmi
        self.dirty_pfns = dirty_pfns  # set of pfns, or None = scan everything
        self.output_buffer = output_buffer
        self.epoch = epoch
        self.now_ms = now_ms

    def page_is_dirty(self, pfn):
        """True if the frame was modified this epoch (or tracking is off)."""
        return self.dirty_pfns is None or pfn in self.dirty_pfns


class ScanModule:
    """Base class for security scan modules.

    Subclasses set :attr:`name`, :attr:`guest_aided`, and implement
    :meth:`scan`. :meth:`setup` runs once when the module is installed and
    typically captures known-good reference state.
    """

    name = "abstract"
    guest_aided = False

    def setup(self, vmi):
        """Capture reference state; called once at install time."""

    def scan(self, context):
        """Audit the paused VM; return a list of :class:`Finding`."""
        raise NotImplementedError

    def replay_targets(self, finding):
        """Physical addresses to write-trap when replaying this finding.

        Modules that can pinpoint an attack via memory events (e.g. the
        canary module) return the addresses to watch; others return [].
        """
        return []


class DetectionResult:
    """Outcome of one end-of-epoch audit."""

    __slots__ = ("findings", "cost_ms", "modules_run", "epoch")

    def __init__(self, findings, cost_ms, modules_run, epoch):
        self.findings = findings
        self.cost_ms = cost_ms
        self.modules_run = modules_run
        self.epoch = epoch

    @property
    def attack_detected(self):
        return any(f.severity is Severity.CRITICAL for f in self.findings)

    def critical_findings(self):
        return [f for f in self.findings if f.severity is Severity.CRITICAL]

    def __repr__(self):
        return "DetectionResult(epoch=%d, findings=%d, cost=%.3fms)" % (
            self.epoch,
            len(self.findings),
            self.cost_ms,
        )


class Detector:
    """Runs the installed scan modules at the end of each epoch."""

    def __init__(self, vmi, registry=None):
        self.vmi = vmi
        self.modules = []
        self.scans_run = 0
        self.total_cost_ms = 0.0
        self._registry = registry
        if registry is not None:
            self._scan_hist = registry.histogram(
                "detector.scan_ms", help="full audit cost per epoch")
            self._findings_total = registry.counter(
                "detector.findings_total", help="findings across all modules")
            self._critical_total = registry.counter(
                "detector.findings_critical",
                help="critical findings (attacks detected)")

    def _module_instruments(self, module):
        hist = self._registry.histogram(
            "detector.module.%s.cost_ms" % module.name,
            help="per-epoch scan cost of module %s" % module.name)
        findings = self._registry.counter(
            "detector.module.%s.findings" % module.name,
            help="findings reported by module %s" % module.name)
        return hist, findings

    def install(self, module):
        """Install a scan module (captures its reference state now)."""
        module.setup(self.vmi)
        self.vmi.take_cost_ms()  # setup cost is not an epoch cost
        self.modules.append(module)
        return module

    def module(self, name):
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError("no scan module named %r" % name)

    def scan(self, dirty_pfns=None, output_buffer=None, epoch=0, now_ms=0.0):
        """One audit: run every module against the paused VM."""
        context = ScanContext(
            self.vmi,
            dirty_pfns=dirty_pfns,
            output_buffer=output_buffer,
            epoch=epoch,
            now_ms=now_ms,
        )
        self.vmi.take_cost_ms()  # start from a clean meter
        # Fixed audit entry cost (ring setup etc.) even with no modules —
        # this is the ~0.34 ms "vmi" line of Table 1.
        self.vmi._charge_ms(self.vmi.costs.SCAN_BASE_MS)
        cost = self.vmi.take_cost_ms()
        findings = []
        for module in self.modules:
            module_findings = module.scan(context) or []
            module_cost = self.vmi.take_cost_ms()
            cost += module_cost
            findings.extend(module_findings)
            if self._registry is not None:
                hist, finding_counter = self._module_instruments(module)
                hist.observe(module_cost)
                if module_findings:
                    finding_counter.inc(len(module_findings))
        self.scans_run += 1
        self.total_cost_ms += cost
        if self._registry is not None:
            self._scan_hist.observe(cost)
            if findings:
                self._findings_total.inc(len(findings))
            critical = sum(1 for f in findings
                           if f.severity is Severity.CRITICAL)
            if critical:
                self._critical_total.inc(critical)
        return DetectionResult(findings, cost, [m.name for m in self.modules],
                               epoch)
