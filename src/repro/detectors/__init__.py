"""Security scan modules and the Detector orchestrator (§3.2, §4.2).

Modules come in two flavours, as in the paper: *unaided* modules need no
cooperation from the guest (malware blacklist, syscall-table integrity,
kernel-module whitelist, outgoing-packet signatures); *guest-aided*
modules rely on tripwires planted inside the VM (heap canaries).
"""

from repro.detectors.base import (
    Detector,
    DetectionResult,
    Finding,
    ScanContext,
    ScanModule,
    Severity,
)
from repro.detectors.canary import CanaryScanModule
from repro.detectors.connections import ConnectionPolicyModule
from repro.detectors.deep import (
    DeepScanModule,
    HiddenProcessDeepScan,
    SignatureSweepModule,
    SynchronousDeepAdapter,
)
from repro.detectors.malware import MalwareScanModule
from repro.detectors.syscall_table import (
    IdtTableModule,
    SyscallTableModule,
    TableIntegrityModule,
)
from repro.detectors.module_list import KernelModuleModule
from repro.detectors.netsig import OutputSignatureModule

__all__ = [
    "Detector",
    "DetectionResult",
    "Finding",
    "ScanContext",
    "ScanModule",
    "Severity",
    "CanaryScanModule",
    "ConnectionPolicyModule",
    "DeepScanModule",
    "HiddenProcessDeepScan",
    "SignatureSweepModule",
    "SynchronousDeepAdapter",
    "MalwareScanModule",
    "SyscallTableModule",
    "IdtTableModule",
    "TableIntegrityModule",
    "KernelModuleModule",
    "OutputSignatureModule",
]
