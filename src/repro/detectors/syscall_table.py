"""Kernel-table integrity scans (unaided; §2's "comparing kernel
structures against known-good state").

:class:`TableIntegrityModule` is the generic mechanism: snapshot a named
kernel pointer table at install time, flag any slot that changes.
:class:`SyscallTableModule` (system-call table hijacking) and
:class:`IdtTableModule` (interrupt-descriptor hooks) are its two
instantiations — each a classic rootkit persistence point.
"""

import struct

from repro.detectors.base import Finding, ScanModule, Severity


class TableIntegrityModule(ScanModule):
    """Compare a kernel pointer table against its boot-time contents."""

    guest_aided = False
    #: Subclasses set these.
    table_symbol = None
    entry_count = 0
    finding_kind = "table-hijack"

    def __init__(self):
        self._reference = None

    def _read_table(self, vmi):
        table_va = vmi.lookup_symbol(self.table_symbol)
        raw = vmi.read_va(table_va, self.entry_count * 8)
        vmi._charge_us(vmi.costs.PER_SYSCALL_US * self.entry_count)
        return list(struct.unpack("<%dQ" % self.entry_count, raw))

    def setup(self, vmi):
        self._reference = self._read_table(vmi)

    def scan(self, context):
        if self._reference is None:
            self.setup(context.vmi)
            return []
        current = self._read_table(context.vmi)
        findings = []
        for index, (expected, observed) in enumerate(
            zip(self._reference, current)
        ):
            if expected != observed:
                findings.append(
                    Finding(
                        self.name,
                        self.finding_kind,
                        Severity.CRITICAL,
                        "%s[%d] hijacked: 0x%x -> 0x%x"
                        % (self.table_symbol, index, expected, observed),
                        {
                            "table": self.table_symbol,
                            "index": index,
                            "expected": expected,
                            "observed": observed,
                        },
                    )
                )
        return findings


class SyscallTableModule(TableIntegrityModule):
    """Detect system-call-table hijacking."""

    name = "syscall-table"
    table_symbol = "sys_call_table"
    finding_kind = "syscall-hijack"

    def __init__(self):
        from repro.guest.linux import SYSCALL_COUNT

        super().__init__()
        self.entry_count = SYSCALL_COUNT


class IdtTableModule(TableIntegrityModule):
    """Detect interrupt-descriptor-table hooks."""

    name = "idt-table"
    table_symbol = "idt_table"
    finding_kind = "idt-hook"

    def __init__(self):
        from repro.guest.linux import IDT_VECTORS

        super().__init__()
        self.entry_count = IDT_VECTORS
