"""Guest-aided memory-error detection via heap tripwires (§4.2, §5.5).

The guest's malloc wrapper (``repro.guest.heap``) plants two kinds of
evidence, both published through a per-process lookup table the
hypervisor can read:

* an 8-byte random canary after every live object — a linear overflow
  clobbers it (the paper's buffer-overflow module);
* a DoubleTake-style poison fill over every freed object — a write
  through a dangling pointer disturbs it (use-after-free detection,
  from the DoubleTake lineage the paper builds on).

At the end of each epoch this module validates the tripwires whose pages
were dirtied during the epoch — the dirty-page filter is what makes the
scan cheap (§5.5: ≈90,000 canaries validated per millisecond).
"""

from repro.detectors.base import Finding, ScanModule, Severity
from repro.errors import IntrospectionError
from repro.guest.heap import FREED_FILL_BYTE, KIND_CANARY, KIND_FREED
from repro.guest.memory import PAGE_SIZE


class CanaryScanModule(ScanModule):
    """Validate heap/stack canaries and freed-region poison fills."""

    name = "canary"
    guest_aided = True

    def __init__(self, scan_all_pages=False, check_freed=True):
        #: When True, ignore the dirty filter and validate everything
        #: (used by tests and by replay-time verification).
        self.scan_all_pages = scan_all_pages
        #: Use-after-free checking can be disabled to measure its cost.
        self.check_freed = check_freed
        self.canaries_checked = 0
        self.freed_regions_checked = 0

    def scan(self, context):
        vmi = context.vmi
        findings = []
        try:
            directory = vmi.canary_directory()
        except IntrospectionError:
            return findings
        for pid, table_va in directory:
            try:
                table = vmi.read_canary_table(pid, table_va)
            except IntrospectionError:
                findings.append(
                    Finding(
                        self.name,
                        "table-corrupt",
                        Severity.CRITICAL,
                        "canary table of pid %d unreadable or corrupt" % pid,
                        {"pid": pid, "table_va": table_va},
                    )
                )
                continue
            expected = table["canary"]
            for addr, size, kind in table["entries"]:
                if kind == KIND_CANARY:
                    finding = self._check_canary(
                        context, pid, addr, size, expected
                    )
                elif kind == KIND_FREED and self.check_freed:
                    finding = self._check_freed(context, pid, addr, size)
                else:
                    finding = None
                if finding is not None:
                    findings.append(finding)
        return findings

    # -- live-object canaries ----------------------------------------------

    def _check_canary(self, context, pid, addr, size, expected):
        vmi = context.vmi
        try:
            canary_pa = vmi.translate(addr + size, pid=pid)
        except IntrospectionError:
            return None
        if not self.scan_all_pages and not context.page_is_dirty(
            canary_pa // PAGE_SIZE
        ):
            return None
        value = vmi.read_canary_value(pid, addr, size)
        self.canaries_checked += 1
        if value == expected:
            return None
        return Finding(
            self.name,
            "buffer-overflow",
            Severity.CRITICAL,
            "canary after object 0x%x (pid %d) clobbered: %016x != %016x"
            % (addr, pid, value, expected),
            {
                "pid": pid,
                "object_addr": addr,
                "object_size": size,
                "canary_va": addr + size,
                "canary_pa": canary_pa,
                "expected": expected,
                "observed": value,
            },
        )

    # -- freed-region poison fills -------------------------------------------

    def _check_freed(self, context, pid, addr, size):
        vmi = context.vmi
        try:
            region_pa = vmi.translate(addr, pid=pid)
        except IntrospectionError:
            return None
        if not self.scan_all_pages:
            # Skip unless some page of the region was dirtied this epoch.
            first = region_pa // PAGE_SIZE
            last = (region_pa + size - 1) // PAGE_SIZE
            if not any(context.page_is_dirty(pfn)
                       for pfn in range(first, last + 1)):
                return None
        data = vmi.read_freed_region(pid, addr, size)
        self.freed_regions_checked += 1
        for offset, value in enumerate(data):
            if value != FREED_FILL_BYTE:
                return Finding(
                    self.name,
                    "use-after-free",
                    Severity.CRITICAL,
                    "freed object 0x%x (pid %d) written after free: "
                    "offset %d holds 0x%02x"
                    % (addr, pid, offset, value),
                    {
                        "pid": pid,
                        "object_addr": addr,
                        "object_size": size,
                        "write_offset": offset,
                        "observed_byte": value,
                        "canary_pa": region_pa + offset,
                        "expected": None,
                    },
                )
        return None

    def replay_targets(self, finding):
        """Physical address to write-trap when replaying this finding."""
        if finding.kind not in ("buffer-overflow", "use-after-free"):
            return []
        return [finding.details["canary_pa"]]
