"""Guest-aided memory-error detection via heap tripwires (§4.2, §5.5).

The guest's malloc wrapper (``repro.guest.heap``) plants two kinds of
evidence, both published through a per-process lookup table the
hypervisor can read:

* an 8-byte random canary after every live object — a linear overflow
  clobbers it (the paper's buffer-overflow module);
* a DoubleTake-style poison fill over every freed object — a write
  through a dangling pointer disturbs it (use-after-free detection,
  from the DoubleTake lineage the paper builds on).

At the end of each epoch this module validates the tripwires whose pages
were dirtied during the epoch — the dirty-page filter is what makes the
scan cheap (§5.5: ≈90,000 canaries validated per millisecond).
"""

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the image
    _np = None

from repro.detectors.base import Finding, ScanModule, Severity
from repro.errors import IntrospectionError
from repro.guest.heap import FREED_FILL_BYTE, KIND_CANARY, KIND_FREED
from repro.guest.memory import PAGE_SIZE

#: Below this many table entries the per-entry Python filter beats the
#: cost of building index arrays; above it the slab filter wins.
_VECTOR_MIN_ENTRIES = 32

_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1


class CanaryScanModule(ScanModule):
    """Validate heap/stack canaries and freed-region poison fills."""

    name = "canary"
    guest_aided = True

    def __init__(self, scan_all_pages=False, check_freed=True):
        #: When True, ignore the dirty filter and validate everything
        #: (used by tests and by replay-time verification).
        self.scan_all_pages = scan_all_pages
        #: Use-after-free checking can be disabled to measure its cost.
        self.check_freed = check_freed
        self.canaries_checked = 0
        self.freed_regions_checked = 0

    def scan(self, context):
        vmi = context.vmi
        findings = []
        try:
            directory = vmi.canary_directory()
        except IntrospectionError:
            return findings
        for pid, table_va in directory:
            try:
                if _np is not None:
                    # The slab read charges the exact same virtual time as
                    # the dict variant; only the host-side decode differs.
                    expected, addrs, sizes, kinds = \
                        vmi.read_canary_table_slab(pid, table_va)
                    if len(addrs) >= _VECTOR_MIN_ENTRIES:
                        self._scan_table_slab(
                            context, pid, expected, addrs, sizes, kinds,
                            findings,
                        )
                        continue
                    entries = zip(addrs.tolist(), sizes.tolist(),
                                  kinds.tolist())
                else:
                    table = vmi.read_canary_table(pid, table_va)
                    expected = table["canary"]
                    entries = table["entries"]
            except IntrospectionError:
                findings.append(
                    Finding(
                        self.name,
                        "table-corrupt",
                        Severity.CRITICAL,
                        "canary table of pid %d unreadable or corrupt" % pid,
                        {"pid": pid, "table_va": table_va},
                    )
                )
                continue
            for addr, size, kind in entries:
                if kind == KIND_CANARY:
                    finding = self._check_canary(
                        context, pid, addr, size, expected
                    )
                elif kind == KIND_FREED and self.check_freed:
                    finding = self._check_freed(context, pid, addr, size)
                else:
                    finding = None
                if finding is not None:
                    findings.append(finding)
        return findings

    # -- slab-driven filtering ---------------------------------------------

    def _scan_table_slab(self, context, pid, expected, addrs, sizes, kinds,
                         findings):
        """Filter one table's entries against the dirty set in bulk.

        The per-entry filter (``translate`` + ``page_is_dirty``) is
        uncharged host work, so vectorizing it cannot move virtual time;
        the charged reads then run for exactly the entries — in exactly
        the table order — the scalar loop would have read.
        """
        vmi = context.vmi
        is_canary = kinds == KIND_CANARY
        is_freed = kinds == KIND_FREED
        # The probe address whose page gates the check: the canary byte
        # for live objects, the region start for freed objects (the same
        # VA each scalar check translates first).
        probe_va = _np.where(is_canary, addrs + sizes, addrs)
        vpns = probe_va >> _PAGE_SHIFT
        # Translate each distinct guest page once (objects are dense, so
        # there are far fewer pages than entries); -1 marks a page the
        # scalar path would have skipped with an IntrospectionError.
        uniq, inverse = _np.unique(vpns, return_inverse=True)
        uniq_pfns = _np.fromiter(
            (self._pfn_of(vmi, pid, vpn) for vpn in uniq.tolist()),
            dtype=_np.int64, count=len(uniq),
        )
        pfns = uniq_pfns[inverse]
        mapped = pfns >= 0
        checked = (is_canary | is_freed) if self.check_freed \
            else is_canary.copy()
        checked &= mapped
        if not self.scan_all_pages and context.dirty_pfns is not None:
            dirty = context.dirty_pfns
            dirty_arr = _np.fromiter(dirty, dtype=_np.int64,
                                     count=len(dirty))
            hit = _np.isin(pfns, dirty_arr)
            # A freed region can span pages: re-check the misses whose
            # physical range covers more than the probe page.
            offsets = (probe_va & (PAGE_SIZE - 1)).astype(_np.int64)
            last_pfns = pfns + ((offsets + sizes.astype(_np.int64) - 1)
                                >> _PAGE_SHIFT)
            spans = checked & is_freed & ~hit & (last_pfns > pfns)
            for i in _np.nonzero(spans)[0].tolist():
                if any(pfn in dirty
                       for pfn in range(int(pfns[i]) + 1,
                                        int(last_pfns[i]) + 1)):
                    hit[i] = True
            checked &= hit
        sel = _np.nonzero(checked)[0]
        if not len(sel):
            return
        # Gather every checked live-object canary in one vectorized read
        # up front: the domain stays paused for the whole audit, so the
        # bytes cannot change between here and each entry's turn in the
        # charge loop below. The loop then replays the scalar path's
        # exact per-entry charge/probe sequence — interleaved with the
        # freed-region checks in table order — without per-entry read
        # plumbing.
        memory = vmi.vm.memory
        can_mask = is_canary[sel]
        can_sel = sel[can_mask]
        values = None
        any_bad = False
        if len(can_sel):
            pas = (pfns[can_sel] * PAGE_SIZE
                   + (probe_va[can_sel].astype(_np.int64)
                      & (PAGE_SIZE - 1)))
            if int(pas.max()) + 8 <= memory.size:
                ram = _np.frombuffer(memory.view(), dtype=_np.uint8)
                values = (ram[pas[:, None] + _np.arange(8)]
                          .copy().view("<u8").ravel())
                bad = values != expected
                any_bad = bool(bad.any())
        can_list = can_mask.tolist()
        sel_list = sel.tolist()
        if values is not None and not any_bad:
            # Every canary is intact: charge each run of consecutive
            # canaries in one bulk loop, breaking only for the (much
            # rarer) freed-region checks so the charge order stays the
            # table order.
            run = 0
            for pos, i in enumerate(sel_list):
                if can_list[pos]:
                    run += 1
                    continue
                if run:
                    vmi.charge_canary_reads(run)
                    self.canaries_checked += run
                    run = 0
                finding = self._validate_freed(
                    context, pid, int(addrs[i]), int(sizes[i]),
                    int(pfns[i]) * PAGE_SIZE
                    + (int(probe_va[i]) & (PAGE_SIZE - 1)),
                )
                if finding is not None:
                    findings.append(finding)
            if run:
                vmi.charge_canary_reads(run)
                self.canaries_checked += run
            return
        charge = vmi.charge_canary_read
        vi = 0
        for pos, i in enumerate(sel_list):
            if can_list[pos]:
                if values is not None:
                    charge()
                    self.canaries_checked += 1
                    if bad[vi]:
                        findings.append(self._canary_finding(
                            pid, int(addrs[i]), int(sizes[i]), expected,
                            int(values[vi]),
                            int(pfns[i]) * PAGE_SIZE
                            + (int(probe_va[i]) & (PAGE_SIZE - 1)),
                        ))
                    vi += 1
                    continue
                # Degenerate gather (a canary hangs off the end of RAM):
                # take the scalar path so the failing read raises at
                # exactly this entry's turn.
                finding = self._validate_canary(
                    context, pid, int(addrs[i]), int(sizes[i]), expected,
                    int(pfns[i]) * PAGE_SIZE
                    + (int(probe_va[i]) & (PAGE_SIZE - 1)),
                )
            else:
                finding = self._validate_freed(
                    context, pid, int(addrs[i]), int(sizes[i]),
                    int(pfns[i]) * PAGE_SIZE
                    + (int(probe_va[i]) & (PAGE_SIZE - 1)),
                )
            if finding is not None:
                findings.append(finding)

    @staticmethod
    def _pfn_of(vmi, pid, vpn):
        try:
            return vmi.translate(vpn * PAGE_SIZE, pid=pid) // PAGE_SIZE
        except IntrospectionError:
            return -1

    # -- live-object canaries ----------------------------------------------

    def _check_canary(self, context, pid, addr, size, expected):
        vmi = context.vmi
        try:
            canary_pa = vmi.translate(addr + size, pid=pid)
        except IntrospectionError:
            return None
        if not self.scan_all_pages and not context.page_is_dirty(
            canary_pa // PAGE_SIZE
        ):
            return None
        return self._validate_canary(context, pid, addr, size, expected,
                                     canary_pa)

    def _validate_canary(self, context, pid, addr, size, expected, canary_pa):
        """The charged read + comparison for one dirty-page canary."""
        value = context.vmi.read_canary_value(pid, addr, size)
        self.canaries_checked += 1
        if value == expected:
            return None
        return self._canary_finding(pid, addr, size, expected, value,
                                    canary_pa)

    def _canary_finding(self, pid, addr, size, expected, value, canary_pa):
        return Finding(
            self.name,
            "buffer-overflow",
            Severity.CRITICAL,
            "canary after object 0x%x (pid %d) clobbered: %016x != %016x"
            % (addr, pid, value, expected),
            {
                "pid": pid,
                "object_addr": addr,
                "object_size": size,
                "canary_va": addr + size,
                "canary_pa": canary_pa,
                "expected": expected,
                "observed": value,
            },
        )

    # -- freed-region poison fills -------------------------------------------

    def _check_freed(self, context, pid, addr, size):
        vmi = context.vmi
        try:
            region_pa = vmi.translate(addr, pid=pid)
        except IntrospectionError:
            return None
        if not self.scan_all_pages:
            # Skip unless some page of the region was dirtied this epoch.
            first = region_pa // PAGE_SIZE
            last = (region_pa + size - 1) // PAGE_SIZE
            if not any(context.page_is_dirty(pfn)
                       for pfn in range(first, last + 1)):
                return None
        return self._validate_freed(context, pid, addr, size, region_pa)

    def _validate_freed(self, context, pid, addr, size, region_pa):
        """The charged read + poison check for one dirty freed region."""
        data = context.vmi.read_freed_region(pid, addr, size)
        self.freed_regions_checked += 1
        # Fast accept: bytes.count scans at C speed, so the (overwhelmingly
        # common) intact region never pays the per-byte Python loop below.
        if data.count(FREED_FILL_BYTE) == len(data):
            return None
        for offset, value in enumerate(data):
            if value != FREED_FILL_BYTE:
                return Finding(
                    self.name,
                    "use-after-free",
                    Severity.CRITICAL,
                    "freed object 0x%x (pid %d) written after free: "
                    "offset %d holds 0x%02x"
                    % (addr, pid, offset, value),
                    {
                        "pid": pid,
                        "object_addr": addr,
                        "object_size": size,
                        "write_offset": offset,
                        "observed_byte": value,
                        "canary_pa": region_pa + offset,
                        "expected": None,
                    },
                )
        return None

    def replay_targets(self, finding):
        """Physical address to write-trap when replaying this finding."""
        if finding.kind not in ("buffer-overflow", "use-after-free"):
            return []
        return [finding.details["canary_pa"]]
