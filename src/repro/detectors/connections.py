"""Connection-policy scan (unaided).

Flags TCP endpoints whose remote peer is outside the tenant's allowlist —
a command-and-control beacon shows up as kernel socket state regardless
of how the malware itself hides. Works on both guest OSes through the
live socket view (Linux socket list / Windows pool scan).
"""

import ipaddress

from repro.detectors.base import Finding, ScanModule, Severity
from repro.guest.net import TCP_CLOSED


class ConnectionPolicyModule(ScanModule):
    """Flag connections to remote networks outside the allowlist."""

    name = "connection-policy"
    guest_aided = False

    def __init__(self, allowed_networks=("10.0.0.0/8", "192.168.0.0/16",
                                         "127.0.0.0/8")):
        self.allowed = [ipaddress.ip_network(network)
                        for network in allowed_networks]

    def _permitted(self, remote_ip):
        address = ipaddress.ip_address(remote_ip)
        return any(address in network for network in self.allowed)

    def scan(self, context):
        findings = []
        for socket in context.vmi.list_sockets():
            if socket.state == TCP_CLOSED:
                continue
            remote_ip, remote_port = socket.remote
            if self._permitted(remote_ip):
                continue
            findings.append(
                Finding(
                    self.name,
                    "unauthorized-connection",
                    Severity.CRITICAL,
                    "pid %d holds a %s connection to %s:%d outside the "
                    "allowlist"
                    % (socket.owner_pid, socket.state_name, remote_ip,
                       remote_port),
                    {
                        "pid": socket.owner_pid,
                        "remote": "%s:%d" % (remote_ip, remote_port),
                        "local": "%s:%d" % socket.local,
                        "state": socket.state_name,
                    },
                )
            )
        return findings
