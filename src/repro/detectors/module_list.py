"""Kernel-module whitelist scan (unaided).

Rootkits commonly load themselves as kernel modules. This module records
the set of modules present at install time and flags anything that appears
later — a simple instance of the paper's "anomalous data in well known
kernel data structures" scans.
"""

from repro.detectors.base import Finding, ScanModule, Severity


class KernelModuleModule(ScanModule):
    """Flag kernel modules loaded after the baseline was captured."""

    name = "kernel-modules"
    guest_aided = False

    def __init__(self, extra_whitelist=()):
        self._whitelist = set(extra_whitelist)

    def setup(self, vmi):
        self._whitelist.update(
            module.name for module in vmi.list_modules()
        )

    def scan(self, context):
        findings = []
        for module in context.vmi.list_modules():
            if module.name not in self._whitelist:
                findings.append(
                    Finding(
                        self.name,
                        "unknown-module",
                        Severity.CRITICAL,
                        "unknown kernel module %r loaded at 0x%x"
                        % (module.name, module.base),
                        {
                            "module": module.name,
                            "base": module.base,
                            "size": module.size,
                        },
                    )
                )
        return findings
