"""CRIMES: Using Evidence to Secure the Cloud — a full Python reproduction.

Rajasekaran, Chawla, Ni, Shah, Berger, Wood. Middleware 2018.

The package provides an evidence-based VM security framework over a
simulated Xen-style virtualization substrate:

* speculative execution with output buffering (zero window of
  vulnerability),
* continuous checkpointing with the paper's three Remus optimizations,
* VMI-based security audits every epoch (canaries, blacklists, kernel
  integrity),
* rollback-and-replay attack pinpointing and Volatility-style post-mortem
  forensics.

Quick start::

    from repro import Crimes, CrimesConfig, LinuxGuest
    from repro.detectors import CanaryScanModule
    from repro.workloads import OverflowAttackProgram

    vm = LinuxGuest(seed=7)
    crimes = Crimes(vm, CrimesConfig(epoch_interval_ms=50.0))
    crimes.install_module(CanaryScanModule())
    crimes.add_program(OverflowAttackProgram(trigger_epoch=3))
    crimes.start()
    crimes.run(max_epochs=10)
    print(crimes.last_outcome.report.render())
"""

from repro.analyzer.honeypot import HoneypotSession
from repro.core.cloud import CloudHost
from repro.core.config import CrimesConfig, SafetyMode
from repro.core.crimes import Crimes, EpochRecord
from repro.checkpoint.costmodel import CheckpointCostModel, OptimizationLevel
from repro.checkpoint.checkpointer import Checkpointer, CopyFidelity
from repro.guest.linux import LinuxGuest
from repro.guest.windows import WindowsGuest
from repro.hypervisor.xen import Hypervisor
from repro.netbuf.buffer import BufferMode, OutputBuffer
from repro.obs import MetricsRegistry, Observer, Tracer
from repro.vmi.libvmi import VMIInstance
from repro.forensics.volatility import VolatilityFramework

__version__ = "1.0.0"

__all__ = [
    "CloudHost",
    "HoneypotSession",
    "Crimes",
    "CrimesConfig",
    "SafetyMode",
    "EpochRecord",
    "CheckpointCostModel",
    "OptimizationLevel",
    "Checkpointer",
    "CopyFidelity",
    "LinuxGuest",
    "WindowsGuest",
    "Hypervisor",
    "BufferMode",
    "OutputBuffer",
    "MetricsRegistry",
    "Observer",
    "Tracer",
    "VMIInstance",
    "VolatilityFramework",
    "__version__",
]
