"""Logging conventions for the library.

Every component logs under the ``repro.`` namespace; the library never
configures handlers (that is the application's job, per standard library
practice). Security-relevant events use WARNING so a default-configured
root logger surfaces them.
"""

import logging


def get_logger(name):
    """Logger for a component, rooted under ``repro``."""
    if not name.startswith("repro"):
        name = "repro.%s" % name
    return logging.getLogger(name)
