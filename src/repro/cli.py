"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro <experiment> [options]

Experiments: ``table1``, ``table3``, ``fig3``, ``fig4``, ``fig5``,
``fig6a``, ``fig6b``, ``fig7``, ``fig8``, ``case1``, ``case2``,
``claims``, ``list``; plus ``metrics`` (instrumented run exporting the
``repro.obs`` summary — JSON, Prometheus text, JSONL trace, or a
``BENCH_*.json`` file), ``incident`` (canned canary-smash run that
dumps and validates a ``crimes-obs/2`` incident bundle), ``chaos``
(deterministic fault-injection run with a safety-invariant verdict and
a replayable journal artifact), ``fleet`` (sharded multi-tenant run
across worker processes with an optional serial-equivalence check), and
``serve`` (the incident case service: an HTTP control plane over a
tamper-evident case vault, with ``--demo-fleet`` self-population).
"""

import argparse
import sys

from repro.core.crimes import PHASE_ORDER
from repro.metrics.tables import format_series, format_table


def _cmd_table1(args):
    from repro.experiments import table1_cost_breakdown

    rows = table1_cost_breakdown(epochs=args.epochs)
    return format_table(
        rows,
        ["workload", "suspend", "vmi", "bitscan", "map", "copy", "resume",
         "dirty_pages"],
        title="Table 1 - pause-phase cost (ms), no-opt, 20 ms epochs",
    )


def _cmd_table3(args):
    from repro.experiments import table3_vmi_costs

    rows = table3_vmi_costs(iterations=args.iterations)
    lines = ["Table 3 - LibVMI analysis costs (microseconds)"]
    for scan in ("process-list", "module-list"):
        lines.append(
            "  %-13s init=%7.0f  preprocess=%7.0f  analysis=%7.1f"
            % (scan, rows[scan]["initialization_us"],
               rows[scan]["preprocessing_us"],
               rows[scan]["memory_analysis_us"])
        )
    lines.append(
        "  volatility    init=%7.0f  process-scan=%7.0f"
        % (rows["volatility"]["initialization_us"],
           rows["volatility"]["process_scan_us"])
    )
    return "\n".join(lines)


def _cmd_fig3(args):
    from repro.experiments import fig3_parsec_overhead
    from repro.workloads.parsec import parsec_names

    results = fig3_parsec_overhead()
    schemes = ["full", "pre-map", "memcpy", "no-opt", "AS"]
    rows = [
        {"benchmark": benchmark,
         **{scheme: "%.3f" % results[scheme][benchmark]
            for scheme in schemes}}
        for benchmark in parsec_names() + ["geomean"]
    ]
    return format_table(
        rows, ["benchmark"] + schemes,
        title="Figure 3 - normalized PARSEC runtime, 200 ms interval",
    )


def _cmd_fig4(args):
    from repro.experiments import fig4_swaptions_breakdown

    results = fig4_swaptions_breakdown()
    rows = [
        {"level": level,
         **{phase: "%.2f" % results[level][phase] for phase in PHASE_ORDER},
         "total": "%.2f" % results[level]["total"]}
        for level in ("full", "pre-map", "memcpy", "no-opt")
    ]
    return format_table(
        rows, ["level"] + list(PHASE_ORDER) + ["total"],
        title="Figure 4 - swaptions pause breakdown (ms), 200 ms epochs",
    )


def _cmd_fig5(args):
    from repro.experiments import fig5_interval_sweep

    results = fig5_interval_sweep()
    sections = []
    for benchmark, series in results.items():
        sections.append(
            format_table(
                [
                    {"interval": row["interval"],
                     "norm_runtime": "%.3f" % row["normalized_runtime"],
                     "pause_ms": "%.2f" % row["pause_ms"],
                     "dirty_pages": "%.0f" % row["dirty_pages"]}
                    for row in series
                ],
                ["interval", "norm_runtime", "pause_ms", "dirty_pages"],
                title="Figure 5 [%s]" % benchmark,
            )
        )
    return "\n\n".join(sections)


def _cmd_fig6a(args):
    from repro.experiments import fig6a_fluidanimate

    results = fig6a_fluidanimate()
    return "\n\n".join(
        format_series(
            "Figure 6a - fluidanimate [%s]" % level,
            [row["interval"] for row in series],
            [row["normalized_runtime"] for row in series],
            x_label="interval_ms", y_label="norm_runtime",
        )
        for level, series in results.items()
    )


def _cmd_fig6b(args):
    from repro.experiments import fig6b_bitmap_scan

    rows = fig6b_bitmap_scan()
    return format_table(
        [
            {"size_gb": row["size_gb"],
             "bit_by_bit_ms": "%.2f" % row["not_optimized_ms"],
             "word_chunk_ms": "%.3f" % row["optimized_ms"]}
            for row in rows
        ],
        ["size_gb", "bit_by_bit_ms", "word_chunk_ms"],
        title="Figure 6b - bitmap scan cost vs VM size",
    )


def _cmd_fig7(args):
    from repro.experiments import fig7_web_performance

    results = fig7_web_performance(duration_ms=args.duration_ms)
    lines = [
        "Figure 7 - web server under wrk",
        "baseline: %.2f ms latency, %.0f req/s"
        % (results["baseline"]["latency_ms"],
           results["baseline"]["throughput_rps"]),
    ]
    for label in ("synchronous", "best_effort"):
        lines.append("")
        lines.append(
            format_table(
                [
                    {"interval": row["interval"],
                     "latency_ms": "%.2f" % row["latency_ms"],
                     "norm_latency": "%.2f" % row["norm_latency"],
                     "throughput": "%.0f" % row["throughput_rps"],
                     "norm_throughput": "%.3f" % row["norm_throughput"]}
                    for row in results[label]
                ],
                ["interval", "latency_ms", "norm_latency", "throughput",
                 "norm_throughput"],
                title=label,
            )
        )
    return "\n".join(lines)


def _cmd_fig8(args):
    from repro.experiments import fig8_attack_timeline

    fig8 = fig8_attack_timeline(interval_ms=args.interval_ms)
    lines = ["Figure 8 - attack detection timeline (offsets from exploit)"]
    for label, offset in fig8["milestones"]:
        lines.append("  %12.3f ms  %s" % (offset, label))
    lines.append("")
    lines.append("pinpoint: %r" % fig8["pinpoint"])
    lines.append("escaped packets: %d" % fig8["escaped_packets"])
    return "\n".join(lines)


def _cmd_case1(args):
    from repro.experiments import case1_overflow

    case = case1_overflow(interval_ms=args.interval_ms)
    return case["outcome"].report.render()


def _cmd_case2(args):
    from repro.experiments import case2_malware

    case = case2_malware(interval_ms=args.interval_ms, hide=args.hide)
    return case["report"].render()


def _cmd_safety(args):
    from repro.experiments import best_effort_window_sweep

    rows = best_effort_window_sweep()
    return format_table(
        [
            {
                "interval_ms": "%.0f" % row["interval_ms"],
                "safety": row["safety"],
                "escaped_packets": row["escaped_packets"],
                "window_ms": "%.1f" % row["window_ms"],
            }
            for row in rows
        ],
        ["interval_ms", "safety", "escaped_packets", "window_ms"],
        title="Window of vulnerability: Synchronous vs Best Effort",
    )


def _cmd_metrics(args):
    """Instrumented run; emits the observer's machine-readable summary.

    Drives one CRIMES-protected guest (web workload + kernel-integrity
    modules) for ``--epochs`` epochs and prints the full ``repro.obs``
    summary as JSON: per-phase pause histograms, per-module detector
    costs, buffer statistics, and the trace rollup. ``--trace-out``
    additionally writes the span stream as JSONL; ``--bench-out`` writes
    a ``BENCH_metrics_cli.json`` summary into the given directory;
    ``--prometheus`` switches the output to text exposition format.
    """
    import json

    from repro.core.config import CrimesConfig
    from repro.core.crimes import Crimes
    from repro.detectors import KernelModuleModule, SyscallTableModule
    from repro.guest.linux import LinuxGuest
    from repro.workloads.webserver import WebServerWorkload

    vm = LinuxGuest(name="metrics-demo", memory_bytes=8 * 1024 * 1024,
                    seed=11)
    crimes = Crimes(
        vm, CrimesConfig(epoch_interval_ms=args.interval_ms, seed=11)
    )
    crimes.install_module(SyscallTableModule())
    crimes.install_module(KernelModuleModule())
    crimes.add_program(WebServerWorkload("medium", seed=11))
    crimes.start()
    crimes.run(max_epochs=args.epochs)

    lines = []
    if args.trace_out:
        crimes.observer.write_trace_jsonl(args.trace_out)
        lines.append("trace written to %s" % args.trace_out)
    if args.bench_out:
        path = crimes.observer.write_bench(
            args.bench_out, "metrics_cli",
            extra={"epochs": crimes.epochs_run,
                   "legacy_metrics": crimes.metrics()},
        )
        lines.append("bench summary written to %s" % path)
    if args.prometheus:
        lines.append(crimes.observer.prometheus_text().rstrip())
    else:
        lines.append(json.dumps(crimes.observer.summary(), indent=2,
                                sort_keys=True))
    return "\n".join(lines)


def _cmd_incident(args):
    """Dump (and validate) an incident bundle from a canned canary smash.

    Drives a CRIMES-protected guest through a web workload plus a heap
    overflow that clobbers a canary on the trigger epoch, with a tight
    SLO policy so the watchdog journals alerts along the way. The failed
    audit rolls the epoch back, the Analyzer runs, and the framework
    snapshots the incident bundle this command prints (``--out`` writes
    it to a file; ``--summary`` prints a human digest instead of JSON).
    The bundle is validated against the ``crimes-obs/2`` schema — the
    exit status is the validation result, which is what the CI smoke
    job checks.

    ``--validate PATH`` skips the canned run entirely and validates an
    on-disk bundle through :mod:`repro.service.ingest` — the *same*
    validator the case vault runs at ingest, so this command's verdict
    and the service's ingest decision can never disagree.
    """
    import json

    if args.validate:
        from repro.errors import IngestError
        from repro.service.ingest import case_id_for, load_bundle_file

        try:
            bundle = load_bundle_file(args.validate)
        except IngestError as err:
            print("bundle REJECTED [%s]: %s" % (err.code, err),
                  file=sys.stderr)
            raise SystemExit(1)
        return "\n".join([
            "bundle valid (schema %s)" % bundle["schema"],
            "  case id: %s" % case_id_for(bundle),
            "  tenant: %s, reason: %s, epoch %d (t=%.1f ms)"
            % (bundle["tenant"], bundle["reason"],
               bundle["incident_epoch"], bundle["virtual_time_ms"]),
            "  flight: %d event(s), head %s..."
            % (len(bundle["flight"]["events"]),
               bundle["flight"]["head_hash"][:16]),
        ])

    from repro.core.adaptive import AdaptiveIntervalController
    from repro.core.config import CrimesConfig
    from repro.core.crimes import Crimes
    from repro.detectors.canary import CanaryScanModule
    from repro.guest.linux import LinuxGuest
    from repro.obs.incident import validate_incident_bundle
    from repro.obs.slo import SLOBudget, SLOPolicy, attach_slo_watchdog
    from repro.workloads.attacks import OverflowAttackProgram
    from repro.workloads.webserver import WebServerWorkload

    seed = 7
    vm = LinuxGuest(name="incident-demo", memory_bytes=8 * 1024 * 1024,
                    seed=seed)
    crimes = Crimes(
        vm, CrimesConfig(epoch_interval_ms=args.interval_ms, seed=seed,
                         history_capacity=4)
    )
    crimes.install_module(CanaryScanModule())
    crimes.add_program(WebServerWorkload("light", seed=seed))
    crimes.add_program(OverflowAttackProgram(trigger_epoch=4))
    # Deliberately unmeetable budgets: the demo must show alert events.
    attach_slo_watchdog(
        crimes,
        policy=SLOPolicy([
            SLOBudget("pause_p99_ms", 0.05,
                      description="demo budget, set to breach"),
            SLOBudget("epoch_overhead_pct", 0.1, unit="%",
                      description="demo budget, set to breach"),
        ]),
        controller=AdaptiveIntervalController(
            min_interval_ms=10.0, max_interval_ms=args.interval_ms),
    )
    crimes.start()
    crimes.run(max_epochs=10)

    bundle = crimes.last_incident
    if bundle is None:
        raise SystemExit("incident demo did not produce a bundle")
    validate_incident_bundle(bundle)

    lines = []
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(bundle, handle, indent=2, sort_keys=True)
            handle.write("\n")
        lines.append("incident bundle written to %s" % args.out)
    if args.summary or args.out:
        flight = bundle["flight"]
        lines.append("incident: %s on tenant %s at epoch %d (t=%.1f ms)"
                     % (bundle["reason"], bundle["tenant"],
                        bundle["incident_epoch"],
                        bundle["virtual_time_ms"]))
        detection = bundle["detection"]
        for finding in detection["findings"]:
            lines.append("  finding: [%s] %s" % (finding["severity"],
                                                 finding["summary"]))
        lines.append("  epoch chain: %s (clean checkpoint at %s)"
                     % ([link["epoch"] for link in bundle["epoch_chain"]],
                        next((link["epoch"] for link in
                              bundle["epoch_chain"]
                              if link["clean_checkpoint"]), "n/a")))
        lines.append("  flight ring: %d events, chain %s, head %s..."
                     % (len(flight["events"]),
                        "intact" if flight["verify"]["ok"] else "BROKEN",
                        flight["head_hash"][:16]))
        lines.append("  slo: %d evaluations, %d alerts"
                     % (len(bundle["slo"]["evaluations"]),
                        bundle["slo"]["alerts"]))
        lines.append("bundle valid (schema %s)" % bundle["schema"])
    else:
        lines.append(json.dumps(bundle, indent=2, sort_keys=True))
    return "\n".join(lines)


def _cmd_chaos(args):
    """Deterministic chaos run: a protected guest under a fault plan.

    Arms every plane named by ``--planes`` (default: all of them) with
    one ``--schedule``-shaped fault schedule, runs a small web-workload
    guest for ``--epochs`` epochs, and prints the fault/recovery story:
    injections, retries, escalations, degraded-mode holds/sheds, and the
    safety-invariant verdict re-derived from the flight journal. The
    run is fully determined by ``--seed`` — re-running with the same
    arguments reproduces the identical journal, hash chain and guest
    memory. ``--out`` writes the journal artifact (the same hash-chained
    event dump an incident bundle ships) as JSON. Exits non-zero if the
    safety invariant does not hold.
    """
    import json

    from repro.faults import ALL_PLANES, FaultPlan, FaultPlane, FaultSchedule
    from repro.faults.chaos import run_chaos

    if args.planes:
        planes = [FaultPlane(name.strip())
                  for name in args.planes.split(",") if name.strip()]
    else:
        planes = list(ALL_PLANES)
    factories = {
        "transient": lambda: FaultSchedule.transient(
            probability=args.probability, magnitude_ms=args.magnitude_ms),
        "persistent": lambda: FaultSchedule.persistent(
            start_epoch=3, magnitude_ms=args.magnitude_ms),
        "burst": lambda: FaultSchedule.burst(
            start_epoch=3, duration=2, magnitude_ms=args.magnitude_ms),
    }
    plan = FaultPlan.uniform(factories[args.schedule], planes=planes,
                             seed=args.seed)
    result = run_chaos(
        fault_plan=plan, seed=args.seed, epochs=args.epochs,
        interval_ms=args.interval_ms, attack_epoch=args.attack_epoch,
    )
    crimes = result["crimes"]
    metrics = result["metrics"]
    faults = metrics["faults"]
    safety = result["safety"]

    lines = ["chaos run: seed=%d, %d epoch(s) requested, %d run"
             % (args.seed, args.epochs, metrics["epochs_run"])]
    lines.append("plan: %s schedule on %s"
                 % (args.schedule,
                    ", ".join(sorted(p.value for p in planes))))
    lines.append(
        "faults: %d injected, %d recovered by retry, %d escalated"
        % (faults["injected_total"], faults["recovered_total"],
           faults["escalated_total"])
    )
    lines.append(
        "degraded: %d epoch(s) held, %d shed, %d fault rollback(s); "
        "health=%s"
        % (metrics["epochs_held"], metrics["epochs_shed"],
           metrics["fault_rollbacks"], metrics["health"])
    )
    lines.append(
        "outputs: %d packet(s) released, %d discarded"
        % (metrics["packets_released"], metrics["packets_discarded"])
    )
    if crimes.suspended:
        lines.append("vm: SUSPENDED (attack response engaged)")
    lines.append("journal: %d event(s), head %s..."
                 % (len(result["events"]), result["head_hash"][:16]))
    lines.append("guest memory sha256: %s..."
                 % result["memory_sha256"][:16])

    if args.out:
        artifact = {
            "schema": "crimes-chaos/1",
            "seed": args.seed,
            "plan": plan.to_dict(),
            "epochs_requested": args.epochs,
            "interval_ms": args.interval_ms,
            "metrics": {key: metrics[key] for key in
                        ("epochs_run", "epochs_held", "epochs_shed",
                         "fault_rollbacks", "health", "packets_released",
                         "packets_discarded")},
            "faults": faults,
            "safety": safety,
            "memory_sha256": result["memory_sha256"],
            "flight": crimes.observer.flight.snapshot(),
        }
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        lines.append("chaos artifact written to %s" % args.out)

    if safety["ok"]:
        lines.append("safety invariant: OK (released epochs all audited "
                     "clean, none previously discarded)")
    else:
        lines.append("safety invariant: VIOLATED")
        for violation in safety["violations"]:
            lines.append("  %s" % violation)
        print("\n".join(lines))
        raise SystemExit(1)
    return "\n".join(lines)


def _cmd_fleet(args):
    """Fleet-scale run: shard many tenants across worker shards.

    Builds ``--tenants`` deterministic tenants (every third one carries
    a heap-overflow attack, so the run exercises incident isolation),
    admits them under an optional ``--budget-mb`` memory budget, and
    drives ``--rounds`` batched rounds on ``--workers`` shards with the
    ``--fleet-backend`` backend (``inline`` shards in-process,
    ``process`` one worker process per shard). Prints the fleet rollup
    and the LPT dispatch model; ``--equivalence`` re-runs the same specs
    on a serial ``CloudHost`` and verifies the sharded digests — virtual
    clocks, epoch counts, incident/quarantine state and flight-journal
    hash-chain heads — match exactly (non-zero exit on mismatch).
    ``--store`` backs every shard's checkpoints with a content-addressed
    page store (dedup across tenants and epochs; ``--store-budget-mb``
    caps the resident set, spilling cold pages to a temp dir), and the
    equivalence host gets its own store so the check also pins
    flat-vs-deduped agreement. ``--out`` writes the rollup + digests as
    a JSON artifact.
    """
    import contextlib
    import json
    import tempfile

    from repro.checkpoint.store import PageStore
    from repro.core.cloud import CloudHost
    from repro.core.fleet import FleetScheduler, default_tenant_spec

    def specs():
        built = []
        for index in range(args.tenants):
            built.append(default_tenant_spec(
                "tenant-%03d" % index,
                seed=args.seed + index,
                sla=("premium", "standard", "batch")[index % 3],
                attack_epoch=4 if index % 3 == 0 else None,
            ))
        return built

    budget = (args.budget_mb * 1024 * 1024
              if args.budget_mb is not None else None)
    store_budget = (int(args.store_budget_mb * 1024 * 1024)
                    if args.store_budget_mb is not None else None)
    with contextlib.ExitStack() as stack:
        spill_dir = None
        if args.store and store_budget is not None:
            spill_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="crimes-store-"))
        fleet = stack.enter_context(FleetScheduler(
            workers=args.workers, backend=args.fleet_backend,
            memory_budget_bytes=budget, store=args.store,
            store_budget_bytes=store_budget, store_spill_dir=spill_dir))
        admitted = 0
        for spec in specs():
            if fleet.admit(spec).admitted:
                admitted += 1
        ran = fleet.run_rounds(args.rounds)
        rollup = fleet.rollup()
        plan = fleet.plan_round()
        digests = fleet.tenant_digests()

    lines = ["fleet run: %d tenant(s) admitted on %d %s shard(s)"
             % (admitted, args.workers, args.fleet_backend)]
    lines.append("rounds: %d requested, %d ran; epochs total: %d"
                 % (args.rounds, ran, rollup["epochs_total"]))
    lines.append("incidents: %d suspended, %d quarantined"
                 % (rollup["incidents"], rollup["quarantined"]))
    lines.append("memory overhead: %.1f MiB (budget: %s)"
                 % (rollup["memory_overhead_bytes"] / 1048576.0,
                    "%.1f MiB" % (budget / 1048576.0) if budget else "none"))
    pause = rollup["round_pause_ms"]
    if pause["count"]:
        lines.append("round pause: %d samples, mean %.2f ms, p99 %.2f ms"
                     % (pause["count"], pause["mean"], pause["p99"]))
    if rollup.get("store"):
        st = rollup["store"]
        lines.append(
            "page store: %.2f MiB resident for %.2f MiB logical "
            "(dedup %.1fx, %d unique pages, %d spill writes, "
            "%d degraded)"
            % (st["resident_bytes"] / 1048576.0,
               st["logical_bytes"] / 1048576.0, st["dedup_ratio"],
               st["unique_pages"], st["spill_writes"],
               st["spill_degraded"]))
    lines.append("next-round dispatch model: serial %.1f ms -> makespan "
                 "%.1f ms on %d worker(s) (speedup %.2fx)"
                 % (plan["serial_ms"], plan["makespan_ms"], args.workers,
                    plan["speedup"]))

    if args.equivalence:
        host = CloudHost(store=PageStore() if args.store else None)
        for spec in specs():
            parts = spec.build()
            host.admit(parts["vm"], parts["config"],
                       modules=parts["modules"],
                       programs=parts["programs"], sla=spec.sla,
                       fault_plan=parts.get("fault_plan"),
                       priority=spec.priority)
        host.run(args.rounds)
        serial = host.tenant_digests()
        keys = ("clock_ms", "epochs_run", "suspended", "quarantined",
                "quarantine_reason", "flight_head")
        mismatches = [
            name for name in sorted(serial)
            if any(serial[name][key] != digests[name][key]
                   for key in keys)
        ]
        if mismatches:
            lines.append("equivalence: FAILED for %s" % mismatches)
            print("\n".join(lines))
            raise SystemExit(1)
        lines.append("equivalence: serial and sharded runs agree on all "
                     "%d tenant digests (incl. hash-chain heads)"
                     % len(serial))

    if args.out:
        artifact = {
            "schema": "crimes-fleet/1",
            "rollup": rollup,
            "dispatch_model": plan,
            "digests": digests,
        }
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        lines.append("fleet artifact written to %s" % args.out)
    return "\n".join(lines)


def _cmd_serve(args):
    """Run the incident case service (the evidence control plane).

    Opens (or creates) the case vault at ``--vault-dir`` and serves the
    HTTP control plane on ``--bind``:``--port``: bundle ingest with
    hash-chain re-verification, cross-tenant findings queries, the
    fleet SLO dashboard, async forensics jobs, the vault audit log, and
    a live Prometheus ``/metrics`` endpoint. ``--demo-fleet`` first
    drives a canned multi-tenant CloudHost run (``--tenants`` tenants,
    ``--rounds`` rounds, seeded by ``--seed``) whose incidents are
    ingested — with memory dumps attached — before the listener starts,
    and keeps the host attached so ``/slo`` and ``/metrics`` show live
    fleet state. Blocks until interrupted.
    """
    from repro.service import CaseService, CaseVault

    vault = CaseVault(args.vault_dir)
    host = None
    if args.demo_fleet:
        from repro.service.demo import run_demo_fleet

        summary = run_demo_fleet(vault, tenants=args.tenants,
                                 rounds=args.rounds, seed=args.seed)
        host = summary["host"]
        print("demo fleet: %d tenant(s), %d round(s); ingested %d "
              "incident case(s): %s"
              % (summary["tenants"], summary["rounds"],
                 len(summary["cases"]), ", ".join(summary["cases"])),
              flush=True)
    service = CaseService(vault, host=host, workers=args.workers,
                          seed=args.seed, bind=args.bind, port=args.port)
    print("case service listening on %s (vault: %s)"
          % (service.url, vault.root), flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return "case service stopped"


def _cmd_lint(args):
    """Run crimeslint, the repo's static invariant analyzer.

    Lints ``src/repro`` (or ``--paths``) against the registered rule
    pack — determinism, virtual time, audited release, journal
    discipline, fault-seam coverage, exception hygiene — honoring the
    ``.crimeslint.toml`` baseline and inline ``# crimeslint:
    ignore[RULE]`` pragmas unless ``--no-baseline`` is given. Exits 0
    on a clean tree, 1 on findings (or stale baseline entries), 2 on a
    configuration error. ``--format json`` prints the versioned
    ``crimes-lint/1`` report; ``--out`` also writes it to a file (the
    CI artifact), which happens *before* the exit status is raised so
    a failing run still uploads its findings.
    """
    import json

    from repro.analysis import catalog, run_lint
    from repro.analysis.registry import explain
    from repro.errors import ConfigError

    if args.list_rules:
        lines = ["registered rules:"]
        for rule_id, name, description in catalog():
            lines.append("  %s %-20s %s" % (rule_id, name, description))
        return "\n".join(lines)

    if args.explain:
        try:
            return explain(args.explain)
        except ConfigError as err:
            print("crimeslint: %s" % err, file=sys.stderr)
            raise SystemExit(2)

    if args.jobs == "auto":
        jobs = "auto"
    else:
        try:
            jobs = int(args.jobs)
        except ValueError:
            print("crimeslint: --jobs wants an integer or 'auto', got %r"
                  % args.jobs, file=sys.stderr)
            raise SystemExit(2)

    try:
        report = run_lint(
            paths=args.paths or None,
            baseline=False if args.no_baseline else "auto",
            select=args.select.split(",") if args.select else None,
            jobs=jobs,
        )
    except ConfigError as err:
        print("crimeslint: configuration error: %s" % err, file=sys.stderr)
        raise SystemExit(2)

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.lint_format == "json":
        output = report.render_json()
    else:
        output = report.render_text()
        if args.out:
            output += "\nfindings report written to %s" % args.out

    if report.exit_code() != 0:
        print(output)
        raise SystemExit(1)
    return output


def _cmd_claims(args):
    from repro.experiments import fig4_swaptions_breakdown, remus_comparison

    remus = remus_comparison()
    fig4 = fig4_swaptions_breakdown()
    reduction = 1 - fig4["full"]["total"] / fig4["no-opt"]["total"]
    return "\n".join(
        [
            "Headline claims:",
            "  improvement over Remus: %.1f%% (paper: ~33%%)"
            % (100 * remus["improvement"]),
            "  PARSEC overhead @5cps:  %.1f%% (paper: 9.8%%)"
            % (100 * (remus["crimes_geomean"] - 1)),
            "  pause reduction:        %.0f%% (paper: 67%%)"
            % (100 * reduction),
            "  canary validation:      90000 canaries/ms (paper: 90,000)",
        ]
    )


def _cmd_verify(args):
    """Self-check: re-measure every headline claim and report PASS/FAIL."""
    from repro.experiments import (
        fig4_swaptions_breakdown,
        fig6b_bitmap_scan,
        remus_comparison,
        table1_cost_breakdown,
        table3_vmi_costs,
    )

    checks = []

    remus = remus_comparison()
    checks.append((
        "33%% improvement over Remus (measured %.1f%%)"
        % (100 * remus["improvement"]),
        0.25 < remus["improvement"] < 0.45,
    ))
    checks.append((
        "9.8%% PARSEC overhead at 5 cps (measured %.1f%%)"
        % (100 * (remus["crimes_geomean"] - 1)),
        0.05 < remus["crimes_geomean"] - 1 < 0.16,
    ))

    fig4 = fig4_swaptions_breakdown()
    reduction = 1 - fig4["full"]["total"] / fig4["no-opt"]["total"]
    checks.append((
        "67%% pause reduction (measured %.0f%%: %.1f -> %.1f ms)"
        % (100 * reduction, fig4["no-opt"]["total"], fig4["full"]["total"]),
        0.55 < reduction < 0.75,
    ))
    checks.append((
        "bitscan 2.7 -> 0.14 ms (measured %.2f -> %.2f)"
        % (fig4["no-opt"]["bitscan"], fig4["full"]["bitscan"]),
        fig4["full"]["bitscan"] < 0.25 < 1.8 < fig4["no-opt"]["bitscan"],
    ))

    table1 = {row["workload"]: row for row in
              table1_cost_breakdown(epochs=20)}
    checks.append((
        "Table 1 copy costs ~12.6/14.6/20 ms (measured %.1f/%.1f/%.1f)"
        % (table1["Light"]["copy"], table1["Medium"]["copy"],
           table1["High"]["copy"]),
        10 < table1["Light"]["copy"] < 15
        and 17 < table1["High"]["copy"] < 23,
    ))

    table3 = table3_vmi_costs(iterations=10)
    checks.append((
        "LibVMI init ~66 ms / analysis ~1.4 ms (measured %.1f / %.2f)"
        % (table3["process-list"]["initialization_us"] / 1000.0,
           table3["process-list"]["memory_analysis_us"] / 1000.0),
        60 < table3["process-list"]["initialization_us"] / 1000.0 < 73
        and table3["process-list"]["memory_analysis_us"] < 2500,
    ))

    fig6b = fig6b_bitmap_scan(sizes_gb=(16,))[0]
    checks.append((
        "16 GiB bitmap scan: word-chunk >> bit-by-bit (%.1f vs %.1f ms)"
        % (fig6b["optimized_ms"], fig6b["not_optimized_ms"]),
        fig6b["optimized_ms"] < fig6b["not_optimized_ms"] / 5,
    ))

    from repro.experiments import case1_overflow

    case = case1_overflow(interval_ms=50.0)
    checks.append((
        "overflow case study: detect <1 epoch, 0 packets escape "
        "(measured %.1f ms, %d packets)"
        % (case["detect_latency_ms"], case["escaped_packets"]),
        case["detect_latency_ms"] < 90 and case["escaped_packets"] == 0,
    ))

    lines = ["Reproduction self-check:"]
    failed = 0
    for description, passed in checks:
        lines.append("  [%s] %s" % ("PASS" if passed else "FAIL",
                                    description))
        failed += 0 if passed else 1
    lines.append("")
    lines.append("%d/%d claims verified" % (len(checks) - failed,
                                            len(checks)))
    return "\n".join(lines)


_COMMANDS = {
    "verify": _cmd_verify,
    "table1": _cmd_table1,
    "table3": _cmd_table3,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6a": _cmd_fig6a,
    "fig6b": _cmd_fig6b,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "case1": _cmd_case1,
    "case2": _cmd_case2,
    "claims": _cmd_claims,
    "safety": _cmd_safety,
    "metrics": _cmd_metrics,
    "incident": _cmd_incident,
    "chaos": _cmd_chaos,
    "fleet": _cmd_fleet,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate CRIMES (Middleware '18) evaluation "
                    "experiments.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["list"],
        help="which table/figure/case study to regenerate",
    )
    parser.add_argument("--epochs", type=int, default=50,
                        help="epochs to average (table1)")
    parser.add_argument("--iterations", type=int, default=100,
                        help="scan iterations (table3)")
    parser.add_argument("--interval-ms", type=float, default=50.0,
                        help="epoch interval (fig8/case1/case2)")
    parser.add_argument("--duration-ms", type=float, default=4000.0,
                        help="client duration (fig7)")
    parser.add_argument("--hide", action="store_true",
                        help="case2: DKOM-hide the malware process")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="metrics: write the span trace as JSONL")
    parser.add_argument("--bench-out", metavar="DIR",
                        help="metrics: write a BENCH_*.json summary here")
    parser.add_argument("--prometheus", action="store_true",
                        help="metrics: emit Prometheus text instead of JSON")
    parser.add_argument("--demo", action="store_true",
                        help="incident: run the canned canary-smash "
                             "scenario (currently the only source)")
    parser.add_argument("--out", metavar="PATH",
                        help="incident: write the bundle JSON here")
    parser.add_argument("--summary", action="store_true",
                        help="incident: print a human digest instead of "
                             "the full bundle JSON")
    parser.add_argument("--validate", metavar="BUNDLE",
                        help="incident: validate an on-disk bundle file "
                             "through the service ingest path and exit")
    parser.add_argument("--port", type=int, default=8321,
                        help="serve: TCP port (0 picks a free one)")
    parser.add_argument("--bind", default="127.0.0.1",
                        help="serve: listen address")
    parser.add_argument("--vault-dir", metavar="DIR", default="case-vault",
                        help="serve: case vault directory "
                             "(created if missing)")
    parser.add_argument("--demo-fleet", action="store_true",
                        help="serve: populate the vault from a canned "
                             "multi-tenant run before listening")
    parser.add_argument("--seed", type=int, default=0,
                        help="chaos: root seed (same seed = same run)")
    parser.add_argument("--planes", metavar="P1,P2,...",
                        help="chaos: comma-separated fault planes "
                             "(default: all)")
    parser.add_argument("--schedule",
                        choices=["transient", "persistent", "burst"],
                        default="transient",
                        help="chaos: temporal shape of every armed plane")
    parser.add_argument("--probability", type=float, default=0.25,
                        help="chaos: per-epoch fault probability "
                             "(transient schedule)")
    parser.add_argument("--magnitude-ms", type=float, default=1.0,
                        help="chaos: fault magnitude (latency/skew/stall)")
    parser.add_argument("--attack-epoch", type=int, default=None,
                        help="chaos: also trigger a heap-overflow attack "
                             "at this epoch")
    parser.add_argument("--tenants", type=int, default=16,
                        help="fleet: number of tenants to admit")
    parser.add_argument("--workers", type=int, default=4,
                        help="fleet: number of shards/worker processes")
    parser.add_argument("--rounds", type=int, default=8,
                        help="fleet: rounds to drive")
    parser.add_argument("--fleet-backend", choices=["inline", "process"],
                        default="process",
                        help="fleet: shard in-process or one worker "
                             "process per shard")
    parser.add_argument("--budget-mb", type=float, default=None,
                        help="fleet: per-host memory budget for "
                             "admission control (MiB; default unlimited)")
    parser.add_argument("--equivalence", action="store_true",
                        help="fleet: verify sharded digests against a "
                             "serial CloudHost run of the same specs")
    parser.add_argument("--store", action="store_true",
                        help="fleet: back every shard's checkpoints "
                             "with a content-addressed page store "
                             "(cross-tenant dedup)")
    parser.add_argument("--store-budget-mb", type=float, default=None,
                        help="fleet: per-shard resident budget for the "
                             "page store (MiB; spills to a temp dir "
                             "when exceeded; default unbounded)")
    parser.add_argument("--format", dest="lint_format",
                        choices=["text", "json"], default="text",
                        help="lint: output format")
    parser.add_argument("--paths", metavar="PATH", nargs="*",
                        help="lint: files/directories to analyze "
                             "(default: [lint].paths from "
                             ".crimeslint.toml, else src/repro)")
    parser.add_argument("--select", metavar="CRL001,CRL002,...",
                        help="lint: run only these rule IDs")
    parser.add_argument("--no-baseline", action="store_true",
                        help="lint: ignore .crimeslint.toml suppressions")
    parser.add_argument("--list-rules", action="store_true",
                        help="lint: print the rule catalog and exit")
    parser.add_argument("--explain", metavar="RULE",
                        help="lint: print one rule's rationale — what it "
                             "flags, why, and how to fix it — and exit")
    parser.add_argument("--jobs", default="1",
                        help="lint: parse files on N worker processes "
                             "('auto' = one per CPU; findings stay in "
                             "deterministic input order)")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("available experiments: %s" % ", ".join(sorted(_COMMANDS)))
        return 0
    print(_COMMANDS[args.experiment](args))
    return 0


def lint_main(argv=None):
    """Entry point for the ``crimeslint`` console script."""
    if argv is None:
        argv = sys.argv[1:]
    return main(["lint"] + list(argv))


if __name__ == "__main__":
    sys.exit(main())
