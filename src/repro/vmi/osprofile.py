"""OS profiles: the struct layouts and walking rules VMI needs per guest OS.

A real LibVMI reads these from a profile/Rekall JSON generated from kernel
debug symbols. Here the profile carries the same :class:`StructDef` objects
the guest serialized with — the profile *is* the ABI contract between guest
and introspector; nothing else is shared.
"""

from repro.errors import IntrospectionError
from repro.guest import linux as linux_abi
from repro.guest import windows as windows_abi


class OSProfile:
    """Layouts + root-symbol names for one guest OS family."""

    def __init__(self, os_name, structs, roots):
        self.os_name = os_name
        self.structs = dict(structs)
        self.roots = dict(roots)

    def struct(self, name):
        try:
            return self.structs[name]
        except KeyError:
            raise IntrospectionError(
                "profile %s has no struct %r" % (self.os_name, name)
            ) from None

    def root_symbol(self, role):
        try:
            return self.roots[role]
        except KeyError:
            raise IntrospectionError(
                "profile %s has no root symbol for %r" % (self.os_name, role)
            ) from None


LINUX_PROFILE = OSProfile(
    "linux",
    structs={
        "task_struct": linux_abi.TASK_STRUCT,
        "mm_struct": linux_abi.MM_STRUCT,
        "vm_area": linux_abi.VM_AREA,
        "module": linux_abi.MODULE,
        "kmem_cache": linux_abi.KMEM_CACHE,
        "canary_directory_header": linux_abi.DIRECTORY_HEADER,
        "canary_directory_entry": linux_abi.DIRECTORY_ENTRY,
    },
    roots={
        "process_list": "init_task",
        "module_list": "modules",
        "syscall_table": "sys_call_table",
        "pid_hash": "pid_hash",
        "task_slab": "kmem_cache_task",
        "canary_directory": "crimes_canary_directory",
    },
)

WINDOWS_PROFILE = OSProfile(
    "windows",
    structs={
        "eprocess": windows_abi.EPROCESS,
        "list_head": windows_abi.LIST_HEAD,
        "tcp_endpoint": windows_abi.TCP_ENDPOINT,
        "file_object": windows_abi.FILE_OBJECT,
        "handle_table": windows_abi.HANDLE_TABLE,
        "registry_key": windows_abi.REGISTRY_KEY,
    },
    roots={
        "process_list": "PsActiveProcessHead",
    },
)

_PROFILES = {
    "linux": LINUX_PROFILE,
    "windows": WINDOWS_PROFILE,
}


def profile_for(os_name):
    """Select the profile for a guest OS (LibVMI's OS-detection step)."""
    try:
        return _PROFILES[os_name]
    except KeyError:
        raise IntrospectionError("no OS profile for %r" % os_name) from None
