"""The VMI instance: LibVMI's API surface over a simulated domain.

An instance binds to one :class:`~repro.hypervisor.xen.Domain`, pays the
one-time initialization + preprocessing costs (Table 3), and then offers
cheap per-scan operations. All reads parse raw guest bytes through the OS
profile; the only shortcut relative to real LibVMI is that user-space
translation consults the guest's page-table object directly instead of
walking CR3 — the mapping consulted is identical.
"""

import struct

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the image
    _np = None

from repro.errors import IntrospectionError
from repro.faults.planes import FaultPlane
from repro.guest.layout import cstring
from repro.guest.memory import PAGE_SIZE
from repro.guest.pagetable import KERNEL_BASE, kernel_pa
from repro.guest.windows import TCP_STATE_NAMES, bytes_to_ip
from repro.sim.rng import SeededStream
from repro.vmi.costmodel import VmiCostModel
from repro.vmi.osprofile import profile_for

#: Sanity bound used when walking linked lists in untrusted guest memory.
_MAX_LIST_LENGTH = 65536


class ProcessInfo:
    """One process as seen through introspection."""

    __slots__ = ("pid", "ppid", "uid", "name", "state", "start_time",
                 "exit_time", "object_va", "kernel_thread")

    def __init__(self, pid, name, object_va, ppid=0, uid=0, state=0,
                 start_time=0, exit_time=0, kernel_thread=False):
        self.pid = pid
        self.name = name
        self.object_va = object_va
        self.ppid = ppid
        self.uid = uid
        self.state = state
        self.start_time = start_time
        self.exit_time = exit_time
        self.kernel_thread = kernel_thread

    def __repr__(self):
        return "ProcessInfo(pid=%d, name=%r)" % (self.pid, self.name)


class ModuleInfo:
    """One kernel module as seen through introspection."""

    __slots__ = ("name", "base", "size", "object_va")

    def __init__(self, name, base, size, object_va):
        self.name = name
        self.base = base
        self.size = size
        self.object_va = object_va

    def __repr__(self):
        return "ModuleInfo(name=%r, base=0x%x)" % (self.name, self.base)


class SocketInfo:
    """One TCP endpoint as seen through introspection."""

    __slots__ = ("owner_pid", "local", "remote", "state", "object_va")

    def __init__(self, owner_pid, local, remote, state, object_va):
        self.owner_pid = owner_pid
        self.local = local
        self.remote = remote
        self.state = state
        self.object_va = object_va

    @property
    def state_name(self):
        return TCP_STATE_NAMES.get(self.state, "UNKNOWN(%d)" % self.state)

    def __repr__(self):
        return "SocketInfo(pid=%d, %s:%d -> %s:%d, %s)" % (
            self.owner_pid, self.local[0], self.local[1],
            self.remote[0], self.remote[1], self.state_name,
        )


class VMIInstance:
    """LibVMI-style handle onto one domain."""

    def __init__(self, domain, cost_model=None, seed=0):
        self.domain = domain
        self.vm = domain.vm
        self.costs = cost_model if cost_model is not None else VmiCostModel()
        self._jitter_rng = SeededStream(seed, "vmi/%s" % self.vm.name)
        self._cost_ms = 0.0
        self._injector = None
        self._flight = None
        self.init_cost_ms = 0.0
        self.preprocess_cost_ms = 0.0
        self._initialize()

    def attach_injector(self, injector):
        """Route reads through the VMI_READ fault plane."""
        self._injector = injector

    def attach_flight(self, flight):
        """Journal introspection anomalies (truncated walks) to ``flight``."""
        self._flight = flight

    # -- cost accounting ---------------------------------------------------

    def _charge_ms(self, ms):
        charged = self._jitter_rng.jitter(ms, self.costs.JITTER)
        self._cost_ms += charged
        return charged

    def _probe_read_fault(self):
        """Probe the VMI_READ plane for one *logical* read.

        The charging unit is the foreign-mapping operation (one
        :meth:`read_pa` call), not the accounting charge: a batched slab
        read that parses hundreds of structs from one mapping is still
        one mapping, so a latency fault adds ``magnitude_ms`` once per
        mapping — it must not scale with how finely the accounting layer
        itemises the bytes it moved.
        """
        injector = self._injector
        if injector is None:
            return
        fault = injector.check(FaultPlane.VMI_READ)
        if fault is None:
            return
        if fault.mode == "latency":
            # A slow mapping path: the read pays the fault's magnitude
            # on top of its modeled cost.
            self._cost_ms += fault.magnitude_ms
        elif fault.fires():
            # "fail"/"corrupt": the foreign mapping tears or the bytes
            # are garbage — surfaces as the same error a real LibVMI
            # read failure produces, and the audit loop's escalation
            # path owns the response.
            raise IntrospectionError(
                "VMI read fault injected (epoch %d, %s)"
                % (fault.epoch, fault.mode)
            )

    def _charge_us(self, us):
        return self._charge_ms(us / 1000.0)

    def take_cost_ms(self):
        """Drain accumulated virtual time since the last call."""
        cost, self._cost_ms = self._cost_ms, 0.0
        return cost

    # -- init ---------------------------------------------------------------

    def _initialize(self):
        # OS + kernel-version detection, System.map load.
        self.profile = profile_for(self.vm.os_name)
        self.init_cost_ms = self._charge_ms(self.costs.INIT_MS)
        # Address-translation setup and struct-offset mapping.
        self._symbols = self.vm.symbols
        self.preprocess_cost_ms = self._charge_ms(self.costs.PREPROCESS_MS)

    # -- address translation and raw reads --------------------------------------

    def lookup_symbol(self, name):
        return self._symbols.lookup(name)

    def translate(self, vaddr, pid=0):
        """VA -> PA. ``pid=0`` means kernel address space."""
        if pid == 0 or vaddr >= KERNEL_BASE:
            return kernel_pa(vaddr)
        process = self.vm.processes.get(pid) if hasattr(self.vm, "processes") else None
        if process is None:
            raise IntrospectionError(
                "cannot translate user address for unknown pid %d" % pid
            )
        return process.page_table.translate(vaddr)

    def read_pa(self, paddr, length):
        # Charge proportionally to the bytes moved (min one cache line):
        # tiny typed reads (a canary, a pointer) must not be priced like
        # whole-page copies, or the 90k-canaries/ms scan rate of §5.5
        # would be unreachable.
        self._charge_us(
            self.costs.PER_PAGE_READ_US * max(length, 64) / float(PAGE_SIZE)
        )
        self._probe_read_fault()
        return self.vm.memory.read(paddr, length)

    def read_va(self, vaddr, length, pid=0):
        return self.read_pa(self.translate(vaddr, pid), length)

    def read_struct(self, struct_name, vaddr, pid=0):
        layout = self.profile.struct(struct_name)
        return layout.decode(self.read_va(vaddr, layout.size, pid))

    def read_u64_va(self, vaddr, pid=0):
        return struct.unpack("<Q", self.read_va(vaddr, 8, pid))[0]

    # -- list-walk integrity ------------------------------------------------

    def _abort_list_walk(self, what, node_va, nodes, reason):
        """A walk over untrusted guest memory did not terminate cleanly.

        A corrupted next pointer must never read as a *shorter clean
        list* — journal the anomaly so the evidence trail names the walk
        and the node, then raise so the audit loop escalates (the same
        path a torn foreign mapping takes).
        """
        if self._flight is not None:
            self._flight.record(
                "vmi.list_truncated", list=what, node_va=node_va,
                nodes=nodes, reason=reason,
            )
        raise IntrospectionError(
            "%s list does not terminate (%s at 0x%x after %d nodes)"
            % (what, reason, node_va, nodes)
        )

    # -- scans: processes ------------------------------------------------------------

    def list_processes(self):
        """Walk the OS's canonical process list (LibVMI process-list)."""
        self._charge_ms(self.costs.SCAN_BASE_MS)
        if self.profile.os_name == "linux":
            return self._linux_task_list()
        return self._windows_active_list()

    def _linux_task_list(self):
        layout = self.profile.struct("task_struct")
        head_va = self.lookup_symbol(self.profile.root_symbol("process_list"))
        names = layout.names
        i_pid = names.index("pid")
        i_comm = names.index("comm")
        i_uid = names.index("uid")
        i_state = names.index("state")
        i_start = names.index("start_time")
        i_flags = names.index("flags")
        i_next = names.index("tasks_next")
        processes = []
        current = head_va
        seen = set()
        for _ in range(_MAX_LIST_LENGTH):
            if current in seen:
                self._abort_list_walk("task", current, len(processes), "cycle")
            seen.add(current)
            record = layout.unpack(self.read_va(current, layout.size))
            self._charge_us(self.costs.PER_PROCESS_US)
            processes.append(
                ProcessInfo(
                    pid=record[i_pid],
                    name=cstring(record[i_comm]),
                    object_va=current,
                    uid=record[i_uid],
                    state=record[i_state],
                    start_time=record[i_start],
                    kernel_thread=bool(record[i_flags] & 0x2),
                )
            )
            current = record[i_next]
            if current == head_va:
                return processes
            if current == 0:
                raise IntrospectionError("task list broken: NULL tasks_next")
        self._abort_list_walk("task", current, len(processes), "bound")

    def _windows_active_list(self):
        eprocess = self.profile.struct("eprocess")
        list_head = self.profile.struct("list_head")
        head_va = self.lookup_symbol(self.profile.root_symbol("process_list"))
        head = list_head.decode(self.read_va(head_va, list_head.size))
        names = eprocess.names
        i_pid = names.index("pid")
        i_name = names.index("image_name")
        i_ppid = names.index("ppid")
        i_create = names.index("create_time")
        i_exit = names.index("exit_time")
        i_next = names.index("links_next")
        processes = []
        current = head["next"]
        seen = {head_va}
        for _ in range(_MAX_LIST_LENGTH):
            if current == head_va:
                return processes
            if current in seen:
                self._abort_list_walk("eprocess", current, len(processes),
                                      "cycle")
            seen.add(current)
            record = eprocess.unpack(self.read_va(current, eprocess.size))
            self._charge_us(self.costs.PER_PROCESS_US)
            processes.append(
                ProcessInfo(
                    pid=record[i_pid],
                    name=cstring(record[i_name]),
                    object_va=current,
                    ppid=record[i_ppid],
                    start_time=record[i_create],
                    exit_time=record[i_exit],
                )
            )
            current = record[i_next]
        self._abort_list_walk("eprocess", current, len(processes), "bound")

    def list_processes_pid_hash(self):
        """Second Linux process view: walk every pid-hash chain."""
        if self.profile.os_name != "linux":
            raise IntrospectionError("pid hash only exists on Linux guests")
        self._charge_ms(self.costs.SCAN_BASE_MS)
        layout = self.profile.struct("task_struct")
        hash_va = self.lookup_symbol(self.profile.root_symbol("pid_hash"))
        names = layout.names
        i_pid = names.index("pid")
        i_comm = names.index("comm")
        i_uid = names.index("uid")
        i_state = names.index("state")
        i_start = names.index("start_time")
        i_chain = names.index("pid_chain")
        processes = []
        for bucket in range(64):
            current = self.read_u64_va(hash_va + bucket * 8)
            seen = set()
            while current:
                if current in seen:
                    self._abort_list_walk("pid-hash", current,
                                          len(processes), "cycle")
                seen.add(current)
                record = layout.unpack(self.read_va(current, layout.size))
                self._charge_us(self.costs.PER_PROCESS_US)
                processes.append(
                    ProcessInfo(
                        pid=record[i_pid],
                        name=cstring(record[i_comm]),
                        object_va=current,
                        uid=record[i_uid],
                        state=record[i_state],
                        start_time=record[i_start],
                    )
                )
                current = record[i_chain]
                if len(seen) > _MAX_LIST_LENGTH:
                    self._abort_list_walk("pid-hash", current,
                                          len(processes), "bound")
        return processes

    # -- scans: modules and syscall table -----------------------------------------------

    def list_modules(self):
        """Walk the loaded-module list (LibVMI module-list)."""
        if self.profile.os_name != "linux":
            raise IntrospectionError("module list implemented for Linux guests")
        self._charge_ms(self.costs.SCAN_BASE_MS)
        layout = self.profile.struct("module")
        head_va = self.lookup_symbol(self.profile.root_symbol("module_list"))
        current = self.read_u64_va(head_va)
        names = layout.names
        i_name = names.index("name")
        i_base = names.index("base")
        i_size = names.index("size")
        i_next = names.index("next")
        modules = []
        seen = set()
        for _ in range(_MAX_LIST_LENGTH):
            if current == 0:
                return modules
            if current in seen:
                self._abort_list_walk("module", current, len(modules), "cycle")
            seen.add(current)
            record = layout.unpack(self.read_va(current, layout.size))
            self._charge_us(self.costs.PER_MODULE_US)
            modules.append(
                ModuleInfo(
                    name=cstring(record[i_name]),
                    base=record[i_base],
                    size=record[i_size],
                    object_va=current,
                )
            )
            current = record[i_next]
        self._abort_list_walk("module", current, len(modules), "bound")

    def read_syscall_table(self):
        """Read all syscall-table entries (integrity-scan input)."""
        from repro.guest.linux import SYSCALL_COUNT

        table_va = self.lookup_symbol(self.profile.root_symbol("syscall_table"))
        raw = self.read_va(table_va, SYSCALL_COUNT * 8)
        self._charge_us(self.costs.PER_SYSCALL_US * SYSCALL_COUNT)
        return list(struct.unpack("<%dQ" % SYSCALL_COUNT, raw))

    # -- scans: canaries (guest-aided module's data source) ---------------------------------

    def canary_directory(self):
        """Read the guest's (pid, canary-table VA) directory."""
        header_layout = self.profile.struct("canary_directory_header")
        entry_layout = self.profile.struct("canary_directory_entry")
        directory_va = self.lookup_symbol(
            self.profile.root_symbol("canary_directory")
        )
        header = header_layout.decode(
            self.read_va(directory_va, header_layout.size)
        )
        if header["count"] > 65536:
            raise IntrospectionError(
                "implausible canary-directory count %d" % header["count"]
            )
        entries = []
        cursor = directory_va + header_layout.size
        for _ in range(header["count"]):
            record = entry_layout.decode(self.read_va(cursor, entry_layout.size))
            entries.append((record["pid"], record["table_va"]))
            cursor += entry_layout.size
        return entries

    def read_canary_table(self, pid, table_va):
        """Read one process's tripwire table.

        Returns ``{"canary": value, "entries": [(addr, size, kind), ...]}``
        where kind is ``KIND_CANARY`` (live object, canary bytes follow)
        or ``KIND_FREED`` (poison-filled freed region).
        """
        from repro.guest.heap import CANARY_ENTRY, CANARY_TABLE_HEADER, \
            CANARY_TABLE_MAGIC

        header = CANARY_TABLE_HEADER.decode(
            self.read_va(table_va, CANARY_TABLE_HEADER.size, pid=pid)
        )
        if header["magic"] != CANARY_TABLE_MAGIC:
            raise IntrospectionError(
                "bad canary-table magic for pid %d: 0x%x" % (pid, header["magic"])
            )
        count = header["count"]
        cursor = table_va + CANARY_TABLE_HEADER.size
        # One bulk read (already a single logical mapping), then one
        # slab-decode pass — no per-entry unpack calls or dict builds.
        raw = self.read_va(cursor, count * CANARY_ENTRY.size, pid=pid)
        entries = [(addr, size, kind) for addr, size, kind, _pad
                   in CANARY_ENTRY.unpack_slab(raw, count)]
        return {"canary": header["canary"], "entries": entries}

    def read_canary_table_slab(self, pid, table_va):
        """Columnar variant of :meth:`read_canary_table`.

        Returns ``(canary, addrs, sizes, kinds)`` where the last three are
        numpy arrays viewing the slab bytes directly (no per-entry tuples).
        Performs the exact same two logical reads as the dict variant, so
        the charged virtual time — and the jitter-stream draw sequence —
        is bit-identical; only the host-side decode differs.
        """
        from repro.guest.heap import CANARY_ENTRY, CANARY_TABLE_HEADER, \
            CANARY_TABLE_MAGIC

        header = CANARY_TABLE_HEADER.decode(
            self.read_va(table_va, CANARY_TABLE_HEADER.size, pid=pid)
        )
        if header["magic"] != CANARY_TABLE_MAGIC:
            raise IntrospectionError(
                "bad canary-table magic for pid %d: 0x%x" % (pid, header["magic"])
            )
        count = header["count"]
        cursor = table_va + CANARY_TABLE_HEADER.size
        raw = self.read_va(cursor, count * CANARY_ENTRY.size, pid=pid)
        records = _np.frombuffer(raw, dtype=CANARY_ENTRY.numpy_dtype(),
                                 count=count)
        return (header["canary"], records["addr"], records["size"],
                records["kind"])

    def read_freed_region(self, pid, addr, size):
        """Read a poisoned freed region's bytes (use-after-free check)."""
        raw = self.read_va(addr, size, pid=pid)
        self._charge_us(self.costs.PER_CANARY_US * max(size // 8, 1))
        return raw

    def read_canary_value(self, pid, object_addr, object_size):
        """Read the 8 canary bytes that should follow one heap object."""
        raw = self.read_va(object_addr + object_size, 8, pid=pid)
        self._charge_us(self.costs.PER_CANARY_US)
        return struct.unpack("<Q", raw)[0]

    def charge_canary_read(self):
        """Charge one canary validation without moving the bytes.

        Virtual-time twin of :meth:`read_canary_value`: the same
        cache-line read charge, the same per-mapping fault probe, the
        same per-canary charge — two jitter draws in the identical
        order. The slab scan pairs this with one vectorized gather of
        the canary values, so a dirty epoch's thousands of validations
        stop paying the per-call read plumbing.
        """
        self._charge_us(
            self.costs.PER_PAGE_READ_US * max(8, 64) / float(PAGE_SIZE)
        )
        self._probe_read_fault()
        self._charge_us(self.costs.PER_CANARY_US)

    def charge_canary_reads(self, count):
        """Charge ``count`` consecutive canary validations in one loop.

        Draw-for-draw identical to ``count`` calls of
        :meth:`charge_canary_read` — the accumulator is threaded through
        a local so every float addition happens in the same order. When
        the VMI_READ plane is quiet this epoch the per-read fault probe
        is a guaranteed-miss dict lookup, so the whole run needs just
        one check; with an active fault the per-entry path runs, because
        probes then consume the fault's bounded-shot budget one read at
        a time.
        """
        injector = self._injector
        if (injector is not None
                and injector.check(FaultPlane.VMI_READ) is not None):
            for _ in range(count):
                self.charge_canary_read()
            return
        jitter = self._jitter_rng.jitter
        fraction = self.costs.JITTER
        read_ms = (self.costs.PER_PAGE_READ_US * max(8, 64)
                   / float(PAGE_SIZE)) / 1000.0
        canary_ms = self.costs.PER_CANARY_US / 1000.0
        cost = self._cost_ms
        for _ in range(count):
            cost += jitter(read_ms, fraction)
            cost += jitter(canary_ms, fraction)
        self._cost_ms = cost

    def list_sockets(self):
        """Open TCP endpoints, live (Linux socket list / Windows pool)."""
        self._charge_ms(self.costs.SCAN_BASE_MS)
        if self.profile.os_name == "linux":
            return self._linux_socket_list()
        return self._windows_socket_pool()

    def _linux_socket_list(self):
        from repro.guest.linux import SOCKET, SOCKET_MAGIC

        head_va = self.lookup_symbol("tcp_sockets")
        current = self.read_u64_va(head_va)
        names = SOCKET.names
        i_magic = names.index("magic")
        i_pid = names.index("pid")
        i_lip = names.index("local_ip")
        i_lport = names.index("local_port")
        i_rip = names.index("remote_ip")
        i_rport = names.index("remote_port")
        i_state = names.index("state")
        i_next = names.index("next")
        sockets = []
        seen = set()
        for _ in range(_MAX_LIST_LENGTH):
            if current == 0:
                return sockets
            if current in seen:
                self._abort_list_walk("socket", current, len(sockets), "cycle")
            seen.add(current)
            record = SOCKET.unpack(self.read_va(current, SOCKET.size))
            if record[i_magic] != SOCKET_MAGIC:
                raise IntrospectionError(
                    "corrupt socket object at 0x%x" % current
                )
            sockets.append(
                SocketInfo(
                    owner_pid=record[i_pid],
                    local=(bytes_to_ip(record[i_lip]), record[i_lport]),
                    remote=(bytes_to_ip(record[i_rip]), record[i_rport]),
                    state=record[i_state],
                    object_va=current,
                )
            )
            current = record[i_next]
        self._abort_list_walk("socket", current, len(sockets), "bound")

    def _windows_socket_pool(self):
        endpoint = self.profile.struct("tcp_endpoint")
        sockets = []
        for start, end in self.vm.pool_ranges():
            region = self.read_pa(start, end - start)
            offset = region.find(b"TcpE")
            while offset != -1:
                absolute = start + offset
                if absolute % 64 == 0 and offset + endpoint.size <= len(region):
                    record = endpoint.decode(region, offset)
                    sockets.append(
                        SocketInfo(
                            owner_pid=record["owner_pid"],
                            local=(bytes_to_ip(record["local_ip"]),
                                   record["local_port"]),
                            remote=(bytes_to_ip(record["remote_ip"]),
                                    record["remote_port"]),
                            state=record["state"],
                            object_va=KERNEL_BASE + absolute,
                        )
                    )
                offset = region.find(b"TcpE", offset + 1)
        return sockets

    def pool_scan_processes(self):
        """psscan-style sweep of the Windows kernel pool for EPROCESS tags.

        Considerably more expensive than walking the active list (it reads
        the whole kernel region), but finds unlinked processes a rootkit
        hid via DKOM.
        """
        if self.profile.os_name != "windows":
            raise IntrospectionError("pool scan implemented for Windows guests")
        eprocess = self.profile.struct("eprocess")
        processes = []
        for start, end in self.vm.pool_ranges():
            region = self.read_pa(start, end - start)
            offset = region.find(b"Proc")
            while offset != -1:
                absolute = start + offset
                if absolute % 64 == 0 and offset + eprocess.size <= len(region):
                    record = eprocess.decode(region, offset)
                    if record["pid"] < (1 << 20):
                        processes.append(
                            ProcessInfo(
                                pid=record["pid"],
                                name=cstring(record["image_name"]),
                                object_va=KERNEL_BASE + absolute,
                                ppid=record["ppid"],
                                start_time=record["create_time"],
                                exit_time=record["exit_time"],
                            )
                        )
                offset = region.find(b"Proc", offset + 1)
        return processes

    # -- events (replay-time write trapping) ------------------------------------------------

    def watch_write_pa(self, paddr):
        """Register a ``VMI_EVENT_MEMORY`` write trap on a physical address."""
        self.domain.event_monitor.watch_paddr(paddr)

    def events_begin(self):
        if not self.domain.event_monitor.attached:
            self.domain.event_monitor.attach()

    def events_end(self):
        self.domain.event_monitor.detach()

    def events_listen(self):
        """Drain pending memory events."""
        return self.domain.event_monitor.poll()

    # -- windows helpers used by forensics ------------------------------------------------------

    def read_handle_table(self, handle_table_va):
        """File paths referenced by a Windows process's handle table."""
        table_layout = self.profile.struct("handle_table")
        file_layout = self.profile.struct("file_object")
        header = table_layout.decode(
            self.read_va(handle_table_va, table_layout.size)
        )
        if header["count"] > 4096:
            raise IntrospectionError(
                "implausible handle count %d" % header["count"]
            )
        paths = []
        cursor = handle_table_va + table_layout.size
        for index in range(header["count"]):
            file_va = self.read_u64_va(cursor + index * 8)
            record = file_layout.decode(self.read_va(file_va, file_layout.size))
            paths.append(cstring(record["name"]))
        return paths
