"""Virtual-time costs of introspection operations.

Calibrated to Table 3 of the paper (LibVMI on a Ubuntu Linux VM, mean of
100 runs) and the Volatility comparison in §5.3:

===================  ============  ===========
operation            process-list  module-list
===================  ============  ===========
initialization        67,096 µs     66,025 µs
preprocessing         53,678 µs     54,928 µs
memory analysis        1,444 µs      1,777 µs
===================  ============  ===========

Initialization (OS/kernel-version detection) and preprocessing (address-
translation setup) happen once per VMI instance; only the memory-analysis
cost recurs each checkpoint — which is why CRIMES can afford a scan every
few tens of milliseconds (§5.3).
"""


class VmiCostModel:
    """Tunable virtual-time constants, in milliseconds unless noted."""

    #: One-time LibVMI initialization (kernel detection, symbol load).
    INIT_MS = 66.5
    #: One-time preprocessing (address-translation setup, struct mapping).
    PREPROCESS_MS = 54.0

    #: Fixed entry cost of any scan (ring setup, TLB of the mapper, ...).
    SCAN_BASE_MS = 0.35
    #: Walking one task_struct / EPROCESS record.
    PER_PROCESS_US = 10.0
    #: Walking one kernel-module record.
    PER_MODULE_US = 17.0
    #: Reading one syscall-table entry.
    PER_SYSCALL_US = 0.6
    #: Validating one heap canary (§5.5: "90,000 canaries per millisecond").
    PER_CANARY_US = 1.0 / 90.0
    #: Comparing one process name against the blacklist (§5.6: ≈0.3 µs).
    PER_BLACKLIST_US = 0.3
    #: Raw physical read, per 4 KiB page.
    PER_PAGE_READ_US = 0.8

    #: Relative jitter applied to every charge (keeps runs plausibly noisy
    #: while remaining deterministic under a fixed seed).
    JITTER = 0.03

    def __init__(self, **overrides):
        for name, value in overrides.items():
            if not hasattr(type(self), name):
                raise TypeError("unknown VMI cost constant %r" % name)
            setattr(self, name, value)
