"""Virtual-machine introspection (LibVMI-alike).

Interprets a guest's raw memory from outside the VM: symbol resolution,
address translation, typed struct reads, process/module walking, and
memory-event consumption. Each operation charges virtual time to the
instance's cost meter, calibrated to the LibVMI measurements of Table 3.
"""

from repro.vmi.costmodel import VmiCostModel
from repro.vmi.libvmi import VMIInstance
from repro.vmi.osprofile import OSProfile, profile_for

__all__ = ["VmiCostModel", "VMIInstance", "OSProfile", "profile_for"]
