#!/usr/bin/env python
"""Tenant's guide to the epoch-interval / safety-mode trade-off (§3.1, §5.4).

Sweeps the two tenant-facing knobs for a latency-sensitive web VM and a
CPU-bound batch VM, printing the numbers behind the paper's advice:

* network-bound VM + Synchronous Safety -> small intervals (10-20 ms);
* network-bound VM that can tolerate a millisecond window -> Best Effort;
* CPU-bound VM -> large intervals (~200 ms) amortize the checkpoint cost.

Run:  python examples/web_server_tuning.py
"""

from repro.experiments.parsec_experiments import run_parsec
from repro.netbuf.buffer import BufferMode
from repro.workloads.webserver import WebServerExperiment, \
    baseline_web_result


def sweep_web():
    baseline = baseline_web_result(duration_ms=3000.0)
    print("web VM baseline (no protection): %.2f ms latency, %.0f req/s\n"
          % (baseline.mean_latency_ms, baseline.throughput_rps))
    print("%-10s %-14s %12s %14s" % ("interval", "safety", "latency",
                                     "throughput"))
    for interval in (20.0, 50.0, 100.0, 200.0):
        for label, mode in (("sync", BufferMode.SYNCHRONOUS),
                            ("best-effort", BufferMode.BEST_EFFORT)):
            run = WebServerExperiment(
                interval_ms=interval, buffering=mode, duration_ms=3000.0,
            ).run()
            print(
                "%-10.0f %-14s %9.2f ms %10.0f rps   (%.1fx / %.2fx)"
                % (interval, label, run.mean_latency_ms,
                   run.throughput_rps,
                   run.mean_latency_ms / baseline.mean_latency_ms,
                   run.throughput_rps / baseline.throughput_rps)
            )


def sweep_cpu():
    print("\nCPU-bound VM (PARSEC freqmine), Full optimization:")
    print("%-10s %18s %12s" % ("interval", "normalized runtime",
                               "pause (ms)"))
    for interval in (20.0, 50.0, 100.0, 200.0):
        run = run_parsec("freqmine", interval_ms=interval,
                         native_runtime_ms=2000.0)
        print("%-10.0f %18.3f %12.2f"
              % (interval, run.normalized_runtime, run.mean_pause_ms))


def main():
    sweep_web()
    sweep_cpu()
    print(
        "\nTake-away (paper section 5.4): pick small intervals or Best "
        "Effort for\nnetwork-bound VMs; large intervals for CPU-bound VMs."
    )


if __name__ == "__main__":
    main()
