#!/usr/bin/env python
"""Security as a cloud service (§2): one host, many protected tenants.

A provider admits a mixed fleet — two Linux web VMs, a Windows desktop,
a CPU-bound batch VM — each with tenant-appropriate scan modules and
epoch intervals. Two tenants get attacked; each incident is detected,
contained, and analyzed without touching the others, and the host-level
accounting shows why this is cheap at scale.

Run:  python examples/cloud_provider.py
"""

from repro import CrimesConfig, LinuxGuest, SafetyMode, WindowsGuest
from repro.core.cloud import CloudHost
from repro.detectors import (
    CanaryScanModule,
    KernelModuleModule,
    MalwareScanModule,
    SyscallTableModule,
)
from repro.workloads import (
    MalwareProgram,
    OverflowAttackProgram,
    ParsecWorkload,
)


def main():
    host = CloudHost(name="rack12-host3")

    host.admit(
        LinuxGuest(name="web-frontend", memory_bytes=16 * 1024 * 1024,
                   seed=41),
        CrimesConfig(epoch_interval_ms=20.0, safety=SafetyMode.SYNCHRONOUS,
                     seed=41),
        modules=[CanaryScanModule(), SyscallTableModule()],
        programs=[OverflowAttackProgram(trigger_epoch=4)],
        sla="premium",
    )
    host.admit(
        LinuxGuest(name="api-backend", memory_bytes=16 * 1024 * 1024,
                   seed=42),
        CrimesConfig(epoch_interval_ms=50.0, seed=42),
        modules=[CanaryScanModule(), KernelModuleModule()],
        sla="standard",
    )
    host.admit(
        WindowsGuest(name="vdi-desktop", memory_bytes=16 * 1024 * 1024,
                     seed=43),
        CrimesConfig(epoch_interval_ms=50.0, seed=43),
        modules=[MalwareScanModule()],
        programs=[MalwareProgram(trigger_epoch=3)],
        sla="standard",
    )
    host.admit(
        LinuxGuest(name="batch-compute", memory_bytes=16 * 1024 * 1024,
                   seed=44),
        CrimesConfig(epoch_interval_ms=200.0, seed=44),
        modules=[SyscallTableModule()],
        programs=[ParsecWorkload("freqmine", native_runtime_ms=2000.0)],
        sla="spot",
    )

    incidents = host.run(rounds=8)

    print("fleet status after %d rounds:" % host.rounds_run)
    for row in host.fleet_summary():
        print(
            "  %-14s sla=%-8s epochs=%-3d mean_pause=%6.2f ms  %s"
            % (row["tenant"], row["sla"], row["epochs"],
               row["mean_pause_ms"], row["status"])
        )

    print("\nincidents: %s" % (", ".join(incidents) or "none"))
    for tenant, outcome in sorted(host.incident_outcomes().items()):
        print("\n--- %s: %s ---" % (tenant, outcome.finding.kind))
        print(outcome.timeline.render())

    print("\nhost accounting:")
    print("  extra memory for backups: %d MiB"
          % (host.memory_overhead_bytes() // (1 << 20)))
    demand = host.audit_seconds_per_wall_second()
    print("  audit demand: %.4f scan-core-seconds per wall second" % demand)
    if demand > 0:
        print("  => one scanning core sustains ~%d tenants of this mix"
              % int(len(host.tenants) / demand))


if __name__ == "__main__":
    main()
