#!/usr/bin/env python
"""The intro's scenario: stealing a database, and why buffering wins.

A key-value store holds card numbers and API keys; an in-guest attacker
bulk-reads them and streams the dump to a C2 server. The same attack
runs twice:

* **Synchronous Safety** — the dump sits in the hypervisor buffer when
  the end-of-epoch audit flags the unauthorized connection; it is
  destroyed. Zero records leak.
* **Best Effort Safety** — outputs pass through immediately; the audit
  still catches the attack at the epoch's end, but the dump is already
  gone. The leak is bounded by exactly one epoch (§3.1's trade).

Run:  python examples/database_exfiltration.py
"""

from repro import Crimes, CrimesConfig, LinuxGuest, SafetyMode
from repro.detectors import ConnectionPolicyModule, OutputSignatureModule
from repro.workloads import DataTheftProgram, KeyValueStoreProgram


def run(safety, seed):
    vm = LinuxGuest(name="db-%s" % safety.value,
                    memory_bytes=16 * 1024 * 1024, seed=seed)
    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=50.0, safety=safety, seed=seed,
                     auto_respond=False),
    )
    store = crimes.add_program(KeyValueStoreProgram(seed=seed))
    crimes.add_program(DataTheftProgram(store, trigger_epoch=3))
    crimes.install_module(ConnectionPolicyModule())
    crimes.install_module(OutputSignatureModule())
    crimes.start()
    crimes.run(max_epochs=5)

    escaped = [p.payload for p in crimes.external_sink.packets]
    leaked = [p for p in escaped if b"BEGIN_DUMP" in p]
    queries = [p for p in escaped if p.startswith(b"VALUE")]
    finding = crimes.records[-1].detection.critical_findings()[0]
    print("[%s]" % safety.value)
    print("  detected: %s" % finding.summary)
    print("  legitimate query responses delivered: %d" % len(queries))
    print("  stolen database dumps that escaped:   %d" % len(leaked))
    if leaked:
        print("  (leak bounded to the attack epoch: %d bytes)"
              % len(leaked[0]))
    print()


def main():
    print("Database exfiltration under the two safety modes:\n")
    run(SafetyMode.SYNCHRONOUS, seed=31)
    run(SafetyMode.BEST_EFFORT, seed=32)


if __name__ == "__main__":
    main()
