#!/usr/bin/env python
"""Memory-safety tour: heap overflow, stack smash, and use-after-free —
three memory errors, one evidence-based detection mechanism.

Each attack leaves a different kind of tripwire damage (a clobbered heap
canary, a clobbered stack canary whose epilogue check never ran, a
disturbed poison fill), and every one is caught by the same end-of-epoch
canary scan, then replayed to the exact attacking instruction. This is
the breadth the paper contrasts against single-process tools like
AddressSanitizer.

Run:  python examples/memory_safety_suite.py
"""

from repro import Crimes, CrimesConfig, LinuxGuest
from repro.detectors import CanaryScanModule
from repro.workloads import (
    OverflowAttackProgram,
    StackSmashProgram,
    UseAfterFreeProgram,
)
from repro.workloads.attacks import OVERFLOW_RIP

SCENARIOS = (
    ("heap buffer overflow",
     lambda: OverflowAttackProgram(trigger_epoch=3), OVERFLOW_RIP),
    ("stack smash (no epilogue)",
     lambda: StackSmashProgram(trigger_epoch=3),
     StackSmashProgram.SMASH_RIP),
    ("use after free",
     lambda: UseAfterFreeProgram(trigger_epoch=3),
     UseAfterFreeProgram.UAF_RIP),
)


def run_scenario(title, make_attack, expected_rip, seed):
    vm = LinuxGuest(name="victim-%d" % seed,
                    memory_bytes=16 * 1024 * 1024, seed=seed)
    crimes = Crimes(vm, CrimesConfig(epoch_interval_ms=50.0, seed=seed))
    crimes.install_module(CanaryScanModule())
    crimes.add_program(make_attack())
    crimes.start()
    crimes.run(max_epochs=6)

    outcome = crimes.last_outcome
    pinpoint = outcome.pinpoint
    print("%-28s detected as %-16s epoch %d" % (
        title, outcome.finding.kind, crimes.records[-1].epoch,
    ))
    print("    evidence: %s" % outcome.finding.summary)
    print(
        "    replay pinpoint: rip=0x%x (%s)"
        % (pinpoint.rip,
           "correct instruction" if pinpoint.rip == expected_rip
           else "UNEXPECTED")
    )
    print("    outputs that escaped: %d packet(s)\n"
          % len(crimes.external_sink.packets))


def main():
    print("One detector, three memory-error classes:\n")
    for seed, (title, make_attack, expected_rip) in enumerate(SCENARIOS,
                                                              start=201):
        run_scenario(title, make_attack, expected_rip, seed)
    print("AddressSanitizer would need the victim recompiled and covers "
          "one process;\nthe hypervisor scan covered all three with no "
          "guest modification beyond the\nmalloc wrapper, at "
          "once-per-epoch cost.")


if __name__ == "__main__":
    main()
