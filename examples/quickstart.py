#!/usr/bin/env python
"""Quickstart: protect a Linux VM with CRIMES and watch it catch an attack.

Builds a guest, installs two scan modules, runs a benign workload beside a
buffer-overflow exploit, and prints the epoch-by-epoch story: speculative
execution, audits, output release, detection, rollback-replay pinpointing,
and the forensic report.

Run:  python examples/quickstart.py
"""

from repro import Crimes, CrimesConfig, LinuxGuest, SafetyMode
from repro.detectors import CanaryScanModule, SyscallTableModule
from repro.workloads import OverflowAttackProgram
from repro.workloads.attacks import OVERFLOW_RIP


def main():
    # 1. A simulated Linux guest: real kernel structures in simulated RAM.
    vm = LinuxGuest(name="tenant-vm", memory_bytes=16 * 1024 * 1024, seed=7)

    # 2. CRIMES with 50 ms epochs and Synchronous Safety: all network and
    #    disk output is buffered until each epoch's security audit passes.
    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=50.0, safety=SafetyMode.SYNCHRONOUS,
                     seed=7),
    )

    # 3. Scan modules: the guest-aided canary check plus an unaided
    #    kernel-integrity check.
    crimes.install_module(CanaryScanModule())
    crimes.install_module(SyscallTableModule())

    # 4. A guest program that behaves for two epochs, then overflows a
    #    100-byte heap buffer and tries to exfiltrate data.
    attack = crimes.add_program(OverflowAttackProgram(trigger_epoch=3))

    crimes.start()
    print("CRIMES started: %s\n" % crimes.config)

    while not crimes.suspended and crimes.epochs_run < 10:
        record = crimes.run_epoch()
        status = "committed" if record.committed else "AUDIT FAILED"
        print(
            "epoch %d: %5.1f ms pause, %4d dirty pages, "
            "%d packet(s) released - %s"
            % (record.epoch, record.pause_ms, record.dirty_pages,
               record.released_packets, status)
        )

    from repro.metrics.trace import render_epoch_trace

    print("\n--- execution trace (Figure 2 in ASCII) ---")
    print(render_epoch_trace(crimes.records))

    outcome = crimes.last_outcome
    print("\n--- attack response timeline ---")
    print(outcome.timeline.render())

    pinpoint = outcome.pinpoint
    print("\nreplay pinpointed the attacking store at rip=0x%x (expected "
          "0x%x)" % (pinpoint.rip, OVERFLOW_RIP))
    print("packets that escaped the hypervisor during the attack epoch: %d"
          % len(crimes.external_sink.packets))

    print("\n--- forensic report ---")
    print(outcome.report.render())


if __name__ == "__main__":
    main()
