#!/usr/bin/env python
"""Honeypot response mode (§6 future-work extension, implemented).

After the first detection, instead of suspending the VM, CRIMES keeps it
running with every output quarantined and sensitive kernel structures
write-trapped. The attacker believes the exfiltration succeeds; the
operator gets a live feed of contacted hosts, attempted writes, and
per-epoch findings.

Run:  python examples/honeypot.py
"""

from repro import Crimes, CrimesConfig, WindowsGuest
from repro.analyzer import HoneypotSession
from repro.detectors import OutputSignatureModule
from repro.guest.devices import Packet
from repro.workloads.base import GuestProgram


class PersistentExfiltrator(GuestProgram):
    """Malware that rotates C2 endpoints every epoch once active."""

    name = "persistent-exfil"

    def __init__(self, trigger_epoch=2):
        super().__init__()
        self.trigger_epoch = trigger_epoch
        self._epoch = 0

    def step(self, start_ms, interval_ms):
        self._epoch += 1
        if self._epoch >= self.trigger_epoch:
            self.vm.nic.send(
                Packet(
                    "192.168.1.76:49164",
                    "203.0.113.%d:8080" % (10 + self._epoch),
                    b"EXFIL credentials batch %d" % self._epoch,
                )
            )
        return {}

    def state_dict(self):
        return {"epoch": self._epoch}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]


def main():
    vm = WindowsGuest(name="honeypot-target", memory_bytes=16 * 1024 * 1024,
                      seed=19)
    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=50.0, auto_respond=False, seed=19),
    )
    crimes.install_module(OutputSignatureModule())
    crimes.add_program(PersistentExfiltrator(trigger_epoch=2))

    crimes.start()
    crimes.run(max_epochs=4)
    finding = crimes.records[-1].detection.critical_findings()[0]
    print("detected: %s" % finding.summary)
    print("real packets escaped so far: %d"
          % len(crimes.external_sink.packets))

    print("\nengaging honeypot mode instead of suspending...")
    session = HoneypotSession(crimes).engage()
    session.observe(epochs=5)
    session.disengage()

    print("real packets escaped after 5 honeypot epochs: %d"
          % len(crimes.external_sink.packets))
    print()
    print(session.report().render())


if __name__ == "__main__":
    main()
