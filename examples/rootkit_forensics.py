#!/usr/bin/env python
"""Kernel-rootkit detection: syscall hijacking, module loading, DKOM.

A rootkit program loads a kernel module, hijacks a syscall-table slot,
and hides a worker process by unlinking it from the task list. Three
unaided scan modules each catch a different piece of the attack, and the
post-detection forensics cross-views (pslist vs pid_hash vs slab scan)
expose the hidden worker — the evidence-based approach of §2 applied to
the OS layer.

Run:  python examples/rootkit_forensics.py
"""

from repro import Crimes, CrimesConfig, LinuxGuest
from repro.detectors import (
    KernelModuleModule,
    MalwareScanModule,
    SyscallTableModule,
)
from repro.forensics.dumps import MemoryDump
from repro.forensics.volatility import VolatilityFramework
from repro.workloads import RootkitProgram


def main():
    vm = LinuxGuest(name="server-vm", memory_bytes=16 * 1024 * 1024,
                    seed=13)
    # Pre-existing benign daemons.
    vm.create_process("sshd")
    vm.create_process("postgres")

    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=50.0, seed=13, auto_respond=False,
                     history_capacity=6),
    )
    crimes.install_module(SyscallTableModule())
    crimes.install_module(KernelModuleModule())
    crimes.install_module(MalwareScanModule(blacklist=set()))
    crimes.add_program(RootkitProgram(trigger_epoch=2))

    crimes.start()
    crimes.run(max_epochs=5)

    detection = crimes.records[-1].detection
    print("audit verdict after epoch %d: %d critical finding(s)\n"
          % (crimes.records[-1].epoch, len(detection.critical_findings())))
    for finding in detection.critical_findings():
        print("  [%s] %s" % (finding.module, finding.summary))

    # Manual forensics on the suspended VM (auto_respond was off).
    print("\n--- cross-view process analysis (linux_psxview) ---")
    dump = MemoryDump.from_vm(vm, label="post-detection")
    volatility = VolatilityFramework(seed=13)
    for row in volatility.run("linux_psxview", dump):
        flag = "  <-- HIDDEN" if row["suspicious"] else ""
        print(
            "  %-16s pid=%-4d pslist=%-5s pid_hash=%-5s slab=%s%s"
            % (row["name"], row["pid"], row["in_pslist"],
               row["in_pid_hash"], row["in_kmem_cache"], flag)
        )

    print("\n--- loaded kernel modules (linux_lsmod) ---")
    for row in volatility.run("linux_lsmod", dump):
        print("  %-16s base=0x%x size=0x%x"
              % (row["name"], row["base"], row["size"]))

    print("\nvolatility time charged: %.1f s"
          % (volatility.take_cost_ms() / 1000.0))

    # Second scenario: the same rootkit on an *unmonitored* VM runs for
    # a while before anyone notices. The checkpoint history lets the
    # investigator time-travel: when did the module first load?
    from repro.analyzer import TimeTravelInvestigator

    stealth_vm = LinuxGuest(name="unmonitored-vm",
                            memory_bytes=16 * 1024 * 1024, seed=14)
    stealthy = Crimes(
        stealth_vm,
        CrimesConfig(epoch_interval_ms=50.0, seed=14, history_capacity=8),
    )
    stealthy.add_program(RootkitProgram(trigger_epoch=4))
    stealthy.start()
    stealthy.run(max_epochs=8)  # no scan modules: nothing fires

    investigator = TimeTravelInvestigator(
        stealth_vm, stealthy.checkpointer.history
    )

    def module_present(dump):
        return any(row["name"] == "diamorphine"
                   for row in volatility.run("linux_lsmod", dump))

    window = investigator.find_first_compromised(module_present)
    print("\n--- time-travel over %d retained checkpoints "
          "(unmonitored VM) ---" % len(stealthy.checkpointer.history))
    print("  %r" % window)
    print("  (%d checkpoint dumps analyzed via bisection)"
          % window.checkpoints_examined)


if __name__ == "__main__":
    main()
