# Convenience entry points; everything runs from the source tree.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-json test verify

lint:
	$(PYTHON) -m repro lint

lint-json:
	$(PYTHON) -m repro lint --format json --out crimeslint.json

test:
	$(PYTHON) -m pytest -q

verify:
	$(PYTHON) -m repro verify
