"""Figure 7: NGINX under wrk — normalized latency and throughput vs epoch
interval, Synchronous Safety vs Best Effort Safety.

Paper shapes reproduced: Best Effort tracks the unprotected baseline
(network-limited VM, low dirty rate); Synchronous latency grows with the
interval because every server→client message (including the three-way
handshake's SYN/ACK) waits for the end-of-epoch commit, and closed-loop
throughput collapses accordingly. Our closed-loop model is *steeper* than
the paper's absolute normalized values — see EXPERIMENTS.md for the
discrepancy discussion — but every direction and ordering matches.
"""

from repro.experiments import fig7_web_performance
from repro.metrics.tables import format_series

INTERVALS = (20, 40, 60, 80, 100, 120, 140, 160, 180, 200)


def test_fig7(run_once, record_result):
    results = run_once(fig7_web_performance, intervals=INTERVALS,
                       duration_ms=4000.0)
    sections = [
        "baseline (no protection): latency %.2f ms, throughput %.0f req/s"
        % (results["baseline"]["latency_ms"],
           results["baseline"]["throughput_rps"])
    ]
    for label in ("synchronous", "best_effort"):
        series = results[label]
        sections.append(
            format_series(
                "Fig 7a - normalized latency [%s]" % label,
                [row["interval"] for row in series],
                [row["norm_latency"] for row in series],
                x_label="interval_ms", y_label="x baseline",
            )
        )
        sections.append(
            format_series(
                "Fig 7b - normalized throughput [%s]" % label,
                [row["interval"] for row in series],
                [row["norm_throughput"] for row in series],
                x_label="interval_ms", y_label="x baseline",
            )
        )
    record_result("fig7_webserver", "\n\n".join(sections))

    base = results["baseline"]
    # Paper's testbed: 17094 req/s and 2.83 ms; same regime here.
    assert 2.0 < base["latency_ms"] < 4.0
    assert 10000 < base["throughput_rps"] < 25000

    sync = results["synchronous"]
    best = results["best_effort"]
    # 7a: synchronous latency grows monotonically with the interval.
    sync_latency = [row["norm_latency"] for row in sync]
    assert all(a < b for a, b in zip(sync_latency, sync_latency[1:]))
    # 7b: synchronous throughput decays with the interval.
    sync_throughput = [row["norm_throughput"] for row in sync]
    assert sync_throughput[0] > sync_throughput[-1]
    assert sync_throughput[-1] < 0.25
    # Best effort stays close to no-protection, improving with interval.
    for row in best:
        assert row["norm_latency"] < 1.6
        assert row["norm_throughput"] > 0.6
    assert best[-1]["norm_throughput"] > 0.9
