"""Figure 4: absolute pause-phase breakdown for swaptions, 200 ms epochs,
across the four optimization levels.

Paper anchors: total pause falls 29.86 ms -> 10.21 ms (-67%); copy is
~71% of No-opt's pause but ~5% of Full's; bitscan 2.7 ms -> 0.14 ms;
Memcpy-without-Pre-map pays the map phase twice.
"""

from repro.core.crimes import PHASE_ORDER
from repro.experiments import fig4_swaptions_breakdown
from repro.metrics.tables import format_table

LEVELS = ["full", "pre-map", "memcpy", "no-opt"]


def test_fig4(run_once, record_result, record_bench):
    results = run_once(fig4_swaptions_breakdown)
    rows = []
    for level in LEVELS:
        rows.append(
            {
                "level": level,
                **{phase: "%.2f" % results[level][phase]
                   for phase in PHASE_ORDER},
                "total": "%.2f" % results[level]["total"],
            }
        )
    text = format_table(
        rows, ["level"] + list(PHASE_ORDER) + ["total"],
        title="Figure 4 - pause breakdown for swaptions (ms), 200 ms epochs",
    )
    record_result("fig4_swaptions_breakdown", text)
    record_bench("fig4_swaptions_breakdown", {
        "description": "swaptions pause breakdown (ms), 200 ms epochs",
        "levels": {level: dict(results[level]) for level in LEVELS},
        "pause_reduction": 1 - results["full"]["total"]
        / results["no-opt"]["total"],
        "paper_anchor": {"pause_reduction": 0.67,
                         "no_opt_total_ms": 29.86, "full_total_ms": 10.21},
    })

    assert 26.0 < results["no-opt"]["total"] < 34.0
    assert 8.0 < results["full"]["total"] < 13.0
    reduction = 1 - results["full"]["total"] / results["no-opt"]["total"]
    assert 0.55 < reduction < 0.75  # paper: 67%
    assert results["no-opt"]["copy"] / results["no-opt"]["total"] > 0.55
    assert results["full"]["copy"] / results["full"]["total"] < 0.15
    assert results["full"]["bitscan"] < 0.25  # paper: 0.14 ms
    assert results["memcpy"]["map"] > 1.6 * results["no-opt"]["map"]
