"""§5.4's quantified guarantee: "a system will be compromised for at
most X milliseconds" under Best Effort, and for zero external effect
under Synchronous Safety.

Sweeps the epoch interval with an exfiltrating attacker (one packet per
millisecond once active) and counts what escapes before suspension.
"""

from repro.experiments.safety_experiments import best_effort_window_sweep
from repro.metrics.tables import format_table

INTERVALS = (20.0, 50.0, 100.0, 200.0)


def test_safety_window(run_once, record_result):
    rows = run_once(best_effort_window_sweep, intervals=INTERVALS)
    record_result(
        "safety_window",
        format_table(
            [
                {
                    "interval_ms": "%.0f" % row["interval_ms"],
                    "safety": row["safety"],
                    "escaped_packets": row["escaped_packets"],
                    "window_ms": "%.1f" % row["window_ms"],
                }
                for row in rows
            ],
            ["interval_ms", "safety", "escaped_packets", "window_ms"],
            title="Window of vulnerability: Synchronous vs Best Effort",
        ),
    )

    sync_rows = [row for row in rows if row["safety"] == "synchronous"]
    best_rows = [row for row in rows if row["safety"] == "best_effort"]
    # Synchronous Safety: zero external impact at every interval.
    for row in sync_rows:
        assert row["escaped_packets"] == 0
    # Best Effort: exactly one epoch's worth of beats escapes (~interval
    # packets at one per millisecond), and the window is bounded by
    # interval + pause.
    for row in best_rows:
        assert 0 < row["escaped_packets"] <= row["interval_ms"] + 1
        assert row["window_ms"] <= row["interval_ms"] + 40.0
    # The leak scales with the interval - the §5.4 tuning advice.
    leaks = [row["escaped_packets"] for row in best_rows]
    assert all(a < b for a, b in zip(leaks, leaks[1:]))
