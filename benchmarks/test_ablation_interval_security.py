"""Ablation: the epoch interval as a security/performance knob (§3.1).

The paper's tuning advice in one chart: sweeping the interval trades
checkpoint overhead (CPU workload normalized runtime) against detection
latency (time from an in-epoch exploit to the failed audit) and, under
Best Effort, against the window of vulnerability. Canary attack detection
is measured for real at each interval; overhead comes from the freqmine
profile under Full optimization.
"""

from repro.core.config import CrimesConfig
from repro.core.crimes import Crimes
from repro.detectors.canary import CanaryScanModule
from repro.experiments.parsec_experiments import run_parsec
from repro.guest.linux import LinuxGuest
from repro.metrics.tables import format_table
from repro.workloads.attacks import OverflowAttackProgram

INTERVALS = (20.0, 50.0, 100.0, 200.0)


def _detection_latency(interval_ms):
    vm = LinuxGuest(name="ablation-interval", memory_bytes=8 * 1024 * 1024,
                    seed=91)
    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=interval_ms, auto_respond=False,
                     seed=91),
    )
    crimes.install_module(CanaryScanModule())
    attack = crimes.add_program(
        OverflowAttackProgram(trigger_epoch=2, attack_offset_fraction=0.5)
    )
    crimes.start()
    crimes.run(max_epochs=4)
    assert crimes.suspended
    return crimes.clock.now - attack.attack_time_ms


def test_ablation_interval_security(run_once, record_result):
    def compute():
        rows = []
        for interval in INTERVALS:
            overhead = run_parsec(
                "freqmine", interval_ms=interval, native_runtime_ms=1500.0
            ).normalized_runtime
            rows.append(
                {
                    "interval_ms": interval,
                    "overhead": overhead,
                    "detection_latency_ms": _detection_latency(interval),
                }
            )
        return rows

    rows = run_once(compute)
    record_result(
        "ablation_interval_security",
        format_table(
            [
                {
                    "interval_ms": "%.0f" % row["interval_ms"],
                    "cpu_overhead": "%.1f%%" % (100 * (row["overhead"] - 1)),
                    "detection_latency_ms": "%.1f"
                    % row["detection_latency_ms"],
                }
                for row in rows
            ],
            ["interval_ms", "cpu_overhead", "detection_latency_ms"],
            title="Ablation - epoch interval: overhead vs detection latency",
        ),
    )

    overheads = [row["overhead"] for row in rows]
    latencies = [row["detection_latency_ms"] for row in rows]
    # Larger intervals: cheaper...
    assert all(a > b for a, b in zip(overheads, overheads[1:]))
    # ...but slower to detect.
    assert all(a < b for a, b in zip(latencies, latencies[1:]))
    # Detection latency is bounded by roughly one interval + pause.
    for row in rows:
        assert row["detection_latency_ms"] < row["interval_ms"] + 40.0


def test_ablation_history_capacity(run_once, record_result):
    """Checkpoint history (§3.1 extension): forensic reach vs memory."""

    def compute():
        rows = []
        for capacity in (0, 1, 3, 5):
            vm = LinuxGuest(name="ablation-history",
                            memory_bytes=8 * 1024 * 1024, seed=92)
            crimes = Crimes(
                vm,
                CrimesConfig(epoch_interval_ms=50.0,
                             history_capacity=capacity, seed=92),
            )
            crimes.start()
            crimes.run(max_epochs=6)
            history = crimes.checkpointer.history
            held_bytes = sum(cp.size_bytes for cp in history.all())
            reach_ms = (
                crimes.clock.now - history.all()[0].taken_at
                if len(history) else 0.0
            )
            rows.append(
                {
                    "capacity": capacity,
                    "checkpoints_held": len(history),
                    "memory_mib": held_bytes / float(1 << 20),
                    "forensic_reach_ms": reach_ms,
                }
            )
        return rows

    rows = run_once(compute)
    record_result(
        "ablation_history_capacity",
        format_table(
            [
                {
                    "capacity": row["capacity"],
                    "checkpoints_held": row["checkpoints_held"],
                    "memory_mib": "%.0f" % row["memory_mib"],
                    "forensic_reach_ms": "%.0f" % row["forensic_reach_ms"],
                }
                for row in rows
            ],
            ["capacity", "checkpoints_held", "memory_mib",
             "forensic_reach_ms"],
            title="Ablation - checkpoint history: memory vs forensic reach",
        ),
    )
    # Memory cost is linear in capacity; reach grows with it.
    assert rows[0]["memory_mib"] == 0
    assert rows[-1]["memory_mib"] > rows[1]["memory_mib"]
    assert rows[-1]["forensic_reach_ms"] > rows[1]["forensic_reach_ms"]
