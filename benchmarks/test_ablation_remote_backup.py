"""Ablation: local vs remote backup (§4.1).

"Instead of storing the backup on a remote machine, CRIMES keeps its
checkpoints on the local host, which permits several key performance
optimizations. ... when the backup is propagated to a remote host, the
overhead increased multi-fold. ... If users desire both high availability
and security, CRIMES could be configured to perform remote checkpoints
and security scans. Our experiments show that this would incur minimal
overhead on top of the cost of Remus."

Four configurations over the PARSEC geomean:
local CRIMES, remote CRIMES (HA + security), remote Remus (HA only,
no scans), and local No-opt.
"""

from repro.baselines.remus_baseline import remus_config
from repro.checkpoint.checkpointer import CopyFidelity
from repro.checkpoint.costmodel import OptimizationLevel
from repro.core.config import CrimesConfig
from repro.experiments.parsec_experiments import run_parsec
from repro.metrics.stats import geometric_mean
from repro.metrics.tables import format_table
from repro.workloads.parsec import parsec_names


def _geomean(config_factory):
    values = []
    for benchmark in parsec_names():
        run = run_parsec(benchmark, config=config_factory(),
                         native_runtime_ms=1500.0)
        values.append(run.normalized_runtime)
    return geometric_mean(values)


def test_ablation_remote_backup(run_once, record_result):
    def compute():
        return {
            "crimes-local": _geomean(
                lambda: CrimesConfig(
                    optimization=OptimizationLevel.FULL,
                    fidelity=CopyFidelity.ACCOUNTING,
                )
            ),
            "crimes-remote (HA+security)": _geomean(
                lambda: CrimesConfig(
                    optimization=OptimizationLevel.FULL,
                    fidelity=CopyFidelity.ACCOUNTING,
                    remote_backup=True,
                )
            ),
            "remus-remote (HA only)": _geomean(
                lambda: remus_config()
            ),
            "no-opt-local": _geomean(
                lambda: CrimesConfig(
                    optimization=OptimizationLevel.NO_OPT,
                    fidelity=CopyFidelity.ACCOUNTING,
                )
            ),
        }

    results = run_once(compute)
    record_result(
        "ablation_remote_backup",
        format_table(
            [
                {"configuration": name,
                 "geomean_normalized_runtime": "%.3f" % value}
                for name, value in results.items()
            ],
            ["configuration", "geomean_normalized_runtime"],
            title="Ablation - backup placement (PARSEC geomean, 200 ms)",
        ),
    )

    local = results["crimes-local"]
    remote = results["crimes-remote (HA+security)"]
    remus = results["remus-remote (HA only)"]
    no_opt = results["no-opt-local"]
    # Remote backup costs multi-fold more than local CRIMES...
    assert (remote - 1) > 3 * (local - 1)
    # ...but adds only a little on top of Remus itself (§4.1's claim):
    # the security scans are a tiny share of the remote pipeline.
    assert remote - remus < 0.08 * remus
    # And local no-opt sits between local full and the remote pipelines.
    assert local < no_opt < remote
