"""Table 1: cost breakdown of the paused state, unoptimized pipeline,
20 ms epochs, web workloads at three intensities.

Paper row (ms):  Light  0.96 / 0.34 / 1.83 / 1.6  / 12.58 / 1.5
                 Medium 0.98 / 0.34 / 1.97 / 1.88 / 14.63 / 1.48
                 High   1.27 / 0.33 / 2.79 / 2.63 / 19.98 / 2
"""

from repro.experiments import table1_cost_breakdown
from repro.metrics.tables import format_table

COLUMNS = ["workload", "suspend", "vmi", "bitscan", "map", "copy", "resume",
           "dirty_pages"]


def test_table1(run_once, record_result, record_bench):
    rows = run_once(table1_cost_breakdown, epochs=50)
    text = format_table(
        rows, COLUMNS,
        title="Table 1 - pause-phase cost (ms), no-opt, 20 ms epochs",
    )
    record_result("table1_cost_breakdown", text)
    record_bench("table1_cost_breakdown", {
        "description": "pause-phase cost (ms), no-opt, 20 ms epochs",
        "rows": [dict(row) for row in rows],
    })

    by_load = {row["workload"]: row for row in rows}
    # Copy dominates and tracks load intensity, as in the paper.
    assert 10.0 < by_load["Light"]["copy"] < 15.0
    assert 17.0 < by_load["High"]["copy"] < 23.0
    for row in rows:
        total = sum(row[phase] for phase in
                    ("suspend", "vmi", "bitscan", "map", "copy", "resume"))
        assert row["copy"] / total > 0.55
        # Pause exceeds the 20 ms epoch itself — the paper's motivation
        # ("clearly this is an unacceptable cost").
        assert total > 15.0
