"""The paper's headline numbers, asserted in one place:

* §1: optimized checkpointing improves performance by ~33% over Remus;
* §1: only 9.8% overhead on PARSEC at 5 checkpoints/second (200 ms);
* §4.1/§5.3: total pause time cut by ~67% (29.86 ms -> 10.21 ms);
* §5.5: ~90,000 canaries validated per millisecond;
* §2: window of vulnerability — zero (Synchronous), one epoch (Best
  Effort), versus minutes for a periodic scanner.
"""

from repro.baselines.virus_scanner import PeriodicScannerBaseline
from repro.experiments import (
    fig4_swaptions_breakdown,
    remus_comparison,
    run_parsec,
)
from repro.metrics.stats import geometric_mean
from repro.vmi.costmodel import VmiCostModel
from repro.workloads.parsec import parsec_names


def test_remus_improvement(run_once, record_result):
    result = run_once(remus_comparison)
    record_result(
        "headline_remus_improvement",
        "CRIMES geomean %.3f vs Remus (remote, no scans) geomean %.3f\n"
        "improvement: %.1f%% (paper: ~33%%)"
        % (result["crimes_geomean"], result["remus_geomean"],
           100 * result["improvement"]),
    )
    assert 0.25 < result["improvement"] < 0.45


def test_parsec_overhead_at_5cps(run_once, record_result):
    def compute():
        values = [
            run_parsec(benchmark, interval_ms=200.0,
                       native_runtime_ms=1500.0).normalized_runtime
            for benchmark in parsec_names()
        ]
        return geometric_mean(values)

    geomean = run_once(compute)
    record_result(
        "headline_parsec_overhead",
        "PARSEC geomean overhead at 5 checkpoints/sec: %.1f%% "
        "(paper: 9.8%%)" % (100 * (geomean - 1)),
    )
    assert 0.05 < geomean - 1 < 0.16


def test_pause_reduction(run_once, record_result):
    results = run_once(fig4_swaptions_breakdown)
    reduction = 1 - results["full"]["total"] / results["no-opt"]["total"]
    record_result(
        "headline_pause_reduction",
        "swaptions pause: %.2f ms -> %.2f ms (-%.0f%%; paper: "
        "29.86 -> 10.21, -67%%)"
        % (results["no-opt"]["total"], results["full"]["total"],
           100 * reduction),
    )
    assert 0.55 < reduction < 0.75


def test_canary_validation_rate(run_once, record_result):
    rate = run_once(lambda: 1000.0 / VmiCostModel.PER_CANARY_US)
    record_result(
        "headline_canary_rate",
        "canary validation rate: %.0f canaries/ms (paper: 90,000)" % rate,
    )
    assert abs(rate - 90000.0) < 1.0


def test_window_of_vulnerability(run_once, record_result):
    def compute():
        scanner = PeriodicScannerBaseline()  # 5-minute sweeps
        return {
            "periodic_expected_ms": scanner.expected_window_ms(),
            "best_effort_worst_ms": 50.0,  # one epoch at 50 ms
            "synchronous_ms": 0.0,         # outputs held until audited
        }

    windows = run_once(compute)
    record_result(
        "headline_window_of_vulnerability",
        "window of vulnerability:\n"
        "  periodic scanner (expected): %.0f ms\n"
        "  CRIMES Best Effort (worst):  %.0f ms\n"
        "  CRIMES Synchronous:          %.0f ms (external impact)"
        % (windows["periodic_expected_ms"],
           windows["best_effort_worst_ms"],
           windows["synchronous_ms"]),
    )
    assert windows["periodic_expected_ms"] / windows["best_effort_worst_ms"] \
        > 1000
