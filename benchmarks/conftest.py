"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes the rendered rows/series to ``benchmarks/results/<name>.txt`` (and
stdout), so the reproduction artifacts survive the run.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_result():
    """record_result(name, text): persist a rendered table/figure."""

    def _record(name, text):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, "%s.txt" % name)
        with open(path, "w") as handle:
            handle.write(text.rstrip() + "\n")
        print("\n" + text)
        return path

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
