"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes the rendered rows/series to ``benchmarks/results/<name>.txt`` (and
stdout), so the reproduction artifacts survive the run.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def record_result():
    """record_result(name, text): persist a rendered table/figure."""

    def _record(name, text):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, "%s.txt" % name)
        with open(path, "w") as handle:
            handle.write(text.rstrip() + "\n")
        print("\n" + text)
        return path

    return _record


@pytest.fixture
def record_bench():
    """record_bench(name, extra, registry=None): write BENCH_<name>.json.

    Persists a machine-readable summary at the repo root via the
    ``repro.obs`` exporter, so the repo accumulates a benchmark
    trajectory alongside the rendered ``results/*.txt`` goldens.
    """
    from repro.obs.exporters import bench_payload, write_bench_json

    def _record(name, extra, registry=None):
        payload = bench_payload(name, registry=registry, extra=extra)
        return write_bench_json(REPO_ROOT, name, payload)

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
