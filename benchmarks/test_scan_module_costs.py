"""Scan-module cost microbenchmark (§3.2's claim that per-epoch scan
overheads stay "minimal (within a few milliseconds)", and §5.6's
≈0.3 µs-per-process blacklist comparison).

Measures each module's per-audit virtual-time cost on a populated guest,
plus the marginal cost over the empty-audit baseline.
"""

from repro.detectors.base import Detector
from repro.detectors.canary import CanaryScanModule
from repro.detectors.malware import MalwareScanModule
from repro.detectors.module_list import KernelModuleModule
from repro.detectors.netsig import OutputSignatureModule
from repro.detectors.syscall_table import IdtTableModule, SyscallTableModule
from repro.guest.devices import OutputSink, Packet
from repro.guest.linux import LinuxGuest
from repro.hypervisor.xen import Hypervisor
from repro.metrics.tables import format_table
from repro.netbuf.buffer import BufferMode, OutputBuffer
from repro.vmi.libvmi import VMIInstance

PROCESSES = 40
ALLOCATIONS_PER_PROCESS = 50


def _populated_guest():
    vm = LinuxGuest(name="scan-cost", memory_bytes=32 * 1024 * 1024,
                    seed=99)
    for index in range(PROCESSES):
        process = vm.create_process("svc-%02d" % index, heap_pages=8)
        for _ in range(ALLOCATIONS_PER_PROCESS):
            process.malloc(64)
    return vm


def _audit_cost(vm, module=None, output_buffer=None):
    domain = Hypervisor(clock=vm.clock).create_domain(vm)
    detector = Detector(VMIInstance(domain, seed=99))
    if module is not None:
        detector.install(module)
    # Average over several audits; canary module scans everything so the
    # dirty filter doesn't zero the work.
    runs = 5
    total = 0.0
    for _ in range(runs):
        total += detector.scan(output_buffer=output_buffer).cost_ms
    return total / runs


def test_scan_module_costs(run_once, record_result):
    def compute():
        buffer = OutputBuffer(OutputSink(), mode=BufferMode.SYNCHRONOUS)
        for index in range(20):
            buffer.emit_packet(
                Packet("10.0.0.1:80", "10.0.0.2:5000", b"response %d" % index)
            )
        baseline = _audit_cost(_populated_guest())
        rows = [{"module": "(empty audit)", "cost_ms": baseline,
                 "marginal_ms": 0.0}]
        for name, factory, kwargs in (
            ("canary (%d canaries)" % (PROCESSES * ALLOCATIONS_PER_PROCESS),
             lambda: CanaryScanModule(scan_all_pages=True), {}),
            ("malware blacklist (%d processes)" % PROCESSES,
             lambda: MalwareScanModule(detect_hidden=False), {}),
            ("malware + hidden cross-view",
             lambda: MalwareScanModule(detect_hidden=True), {}),
            ("syscall-table", SyscallTableModule, {}),
            ("idt-table", IdtTableModule, {}),
            ("kernel-modules", KernelModuleModule, {}),
            ("output-signatures (20 pkts)", OutputSignatureModule,
             {"output_buffer": buffer}),
        ):
            cost = _audit_cost(_populated_guest(), factory(), **kwargs)
            rows.append({"module": name, "cost_ms": cost,
                         "marginal_ms": cost - baseline})
        return rows

    rows = run_once(compute)
    record_result(
        "scan_module_costs",
        format_table(
            [
                {"module": row["module"],
                 "audit_ms": "%.3f" % row["cost_ms"],
                 "marginal_ms": "%.3f" % row["marginal_ms"]}
                for row in rows
            ],
            ["module", "audit_ms", "marginal_ms"],
            title="Per-audit scan costs on a populated guest "
                  "(%d processes)" % PROCESSES,
        ),
    )

    by_name = {row["module"]: row for row in rows}
    # §3.2: every module stays within a few milliseconds per audit.
    for row in rows:
        assert row["cost_ms"] < 5.0, row["module"]
    # The canary scan is cheap even with thousands of canaries
    # (90,000/ms validation rate).
    canary_row = next(row for name, row in by_name.items()
                      if name.startswith("canary"))
    assert canary_row["marginal_ms"] < 1.5
    # Blacklist marginal cost is microseconds-scale (§5.6).
    blacklist_row = next(row for name, row in by_name.items()
                         if name.startswith("malware blacklist"))
    assert blacklist_row["marginal_ms"] < 1.0
