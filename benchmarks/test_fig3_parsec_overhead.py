"""Figure 3: normalized PARSEC runtime, 200 ms checkpoint interval, under
Full / Pre-map / Memcpy / No-opt CRIMES and AddressSanitizer.

Paper anchors: Full geomean ≈ 1.098 ("only 9.8%"); No-opt and AS increase
runtime by 40-60%; fluidanimate hits ≈4.7 (No-opt) and ≈2.6 (AS).
Table 2 (the suite inventory) is printed as the header.
"""

from repro.experiments import fig3_parsec_overhead
from repro.metrics.tables import format_table
from repro.workloads.parsec import PARSEC_PROFILES, parsec_names

SCHEMES = ["full", "pre-map", "memcpy", "no-opt", "AS"]


def test_fig3(run_once, record_result):
    results = run_once(fig3_parsec_overhead)

    inventory = format_table(
        [
            {"benchmark": name,
             "description": PARSEC_PROFILES[name].description}
            for name in parsec_names()
        ],
        ["benchmark", "description"],
        title="Table 2 - PARSEC 3.0 benchmarks used in the evaluation",
    )
    rows = []
    for benchmark in parsec_names() + ["geomean"]:
        rows.append(
            {
                "benchmark": benchmark,
                **{scheme: "%.3f" % results[scheme][benchmark]
                   for scheme in SCHEMES},
            }
        )
    figure = format_table(
        rows, ["benchmark"] + SCHEMES,
        title="Figure 3 - normalized runtime, 200 ms interval",
    )
    record_result("fig3_parsec_overhead", inventory + "\n\n" + figure)

    # Headline claim: ~9.8% overhead for the fully optimized system.
    assert 1.05 < results["full"]["geomean"] < 1.16
    # No-opt and AS sit in the paper's 40-60% band.
    assert 1.30 < results["no-opt"]["geomean"] < 1.70
    assert 1.40 < results["AS"]["geomean"] < 1.70
    # Each optimization helps.
    assert (results["full"]["geomean"] < results["pre-map"]["geomean"]
            < results["memcpy"]["geomean"] < results["no-opt"]["geomean"])
    # Worst case: fluidanimate.
    assert 4.0 < results["no-opt"]["fluidanimate"] < 5.5
    assert results["AS"]["fluidanimate"] == 2.6
