"""Figure 6b: simulated bitmap-scan cost vs VM size (0-16 GiB).

Paper anchors: bit-by-bit cost climbs steeply with VM size (tens of ms by
16 GiB); word-chunk scanning stays far below it. The functional check
also runs both real algorithms on one bitmap to confirm identical output.
"""

from repro.experiments import fig6b_bitmap_scan
from repro.experiments.bitmap_experiments import functional_scan_check
from repro.metrics.tables import format_series

SIZES_GB = (1, 2, 4, 6, 8, 10, 12, 14, 16)


def test_fig6b(run_once, record_result):
    rows = run_once(fig6b_bitmap_scan, sizes_gb=SIZES_GB)
    text = "\n\n".join(
        [
            format_series(
                "Fig 6b - bitmap scan cost, not optimized (bit-by-bit)",
                [row["size_gb"] for row in rows],
                [row["not_optimized_ms"] for row in rows],
                x_label="vm_size_gb", y_label="ms",
            ),
            format_series(
                "Fig 6b - bitmap scan cost, optimized (word-chunk)",
                [row["size_gb"] for row in rows],
                [row["optimized_ms"] for row in rows],
                x_label="vm_size_gb", y_label="ms",
            ),
        ]
    )
    check = functional_scan_check(frame_count=262144, dirty_fraction=0.02)
    text += (
        "\n\nfunctional check (1 GiB bitmap, 2%% dirty): identical=%s, "
        "bits visited saved=%.1f%%"
        % (check["identical"], 100 * check["bits_saved_fraction"])
    )
    record_result("fig6b_bitmap_scan", text)

    assert check["identical"]
    assert 30.0 < rows[-1]["not_optimized_ms"] < 80.0
    for row in rows:
        assert row["optimized_ms"] < row["not_optimized_ms"] / 5
    # Bit-by-bit grows ~linearly in VM size.
    assert rows[-1]["not_optimized_ms"] > 10 * rows[0]["not_optimized_ms"]
