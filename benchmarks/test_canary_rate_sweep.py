"""§5.5's scan-rate claim, measured as a sweep: "our scanner can
validate 90,000 canaries per millisecond".

Populates guests with increasing canary counts, audits with the dirty
filter disabled (so every canary is validated), and fits the marginal
cost per canary.
"""

from repro.detectors.base import Detector
from repro.detectors.canary import CanaryScanModule
from repro.guest.linux import LinuxGuest
from repro.hypervisor.xen import Hypervisor
from repro.metrics.tables import format_series
from repro.vmi.libvmi import VMIInstance

COUNTS = (500, 1000, 2000, 4000)


def _audit_cost_with_canaries(count):
    vm = LinuxGuest(name="rate-%d" % count, memory_bytes=64 * 1024 * 1024,
                    seed=103)
    allocations_per_process = 500
    processes = max(count // allocations_per_process, 1)
    for index in range(processes):
        process = vm.create_process(
            "filler-%02d" % index, heap_pages=16,
            canary_capacity=allocations_per_process + 8,
        )
        for _ in range(min(allocations_per_process,
                           count - index * allocations_per_process)):
            process.malloc(16)
    domain = Hypervisor(clock=vm.clock).create_domain(vm)
    detector = Detector(VMIInstance(domain, seed=103))
    module = detector.install(CanaryScanModule(scan_all_pages=True))
    runs = 3
    total = 0.0
    for _ in range(runs):
        total += detector.scan().cost_ms
    return total / runs, module.canaries_checked // runs


def test_canary_rate_sweep(run_once, record_result):
    def compute():
        rows = []
        for count in COUNTS:
            cost_ms, checked = _audit_cost_with_canaries(count)
            rows.append({"count": checked, "cost_ms": cost_ms})
        return rows

    rows = run_once(compute)
    # Marginal cost from the endpoints of the sweep.
    span_canaries = rows[-1]["count"] - rows[0]["count"]
    span_ms = rows[-1]["cost_ms"] - rows[0]["cost_ms"]
    rate_per_ms = span_canaries / span_ms if span_ms > 0 else float("inf")
    record_result(
        "canary_rate_sweep",
        format_series(
            "Audit cost vs canary count (dirty filter off)",
            [row["count"] for row in rows],
            [row["cost_ms"] for row in rows],
            x_label="canaries", y_label="audit ms",
        )
        + "\n\nmarginal validation rate: %.0f canaries/ms "
          "(paper: 90,000; includes table-read overhead)" % rate_per_ms,
    )

    # Cost grows sub-linearly-to-linearly and stays in the ms regime.
    costs = [row["cost_ms"] for row in rows]
    assert all(a <= b * 1.02 for a, b in zip(costs, costs[1:]))
    assert costs[-1] < 5.0
    # Within an order of magnitude of the paper's rate (the model charges
    # table reads and per-object bookkeeping on top of raw compares).
    assert rate_per_ms > 9000
