"""Table 3: LibVMI analysis costs (µs), mean of 100 runs, plus the §5.3
Volatility comparison (≈2.5 s init, ≈500 ms per process scan).

Paper (µs):             process-list  module-list
  Initialization          67,096        66,025
  Preprocessing           53,678        54,928
  Memory Analysis          1,444         1,777
"""

from repro.experiments import table3_vmi_costs
from repro.metrics.tables import format_table


def test_table3(run_once, record_result):
    rows = run_once(table3_vmi_costs, iterations=100)
    table_rows = []
    for phase, key in (("Initialization", "initialization_us"),
                       ("Preprocessing", "preprocessing_us"),
                       ("Memory Analysis", "memory_analysis_us")):
        table_rows.append(
            {
                "Time Cost (usec)": phase,
                "process-list": round(rows["process-list"][key]),
                "module-list": round(rows["module-list"][key]),
            }
        )
    text = format_table(
        table_rows, ["Time Cost (usec)", "process-list", "module-list"],
        title="Table 3 - LibVMI analysis costs (microseconds)",
    )
    text += (
        "\n\nVolatility comparison (section 5.3):"
        "\n  initialization: %.0f us   process scan: %.0f us"
        % (rows["volatility"]["initialization_us"],
           rows["volatility"]["process_scan_us"])
    )
    record_result("table3_vmi_costs", text)

    for scan in ("process-list", "module-list"):
        assert 60000 < rows[scan]["initialization_us"] < 73000
        assert 48000 < rows[scan]["preprocessing_us"] < 60000
        # Only this recurring cost is paid per epoch — the paper's point.
        assert rows[scan]["memory_analysis_us"] < 2500
    assert rows["volatility"]["initialization_us"] > 30 * \
        rows["process-list"]["initialization_us"]
