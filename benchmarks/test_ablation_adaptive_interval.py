"""Ablation: fixed vs adaptive epoch intervals.

§3.1 hand-tunes the interval per workload ("tens to a few hundred
milliseconds"). The adaptive controller automates that: one policy
("10% pause overhead") lands each workload near the interval an expert
would have picked — hundreds of ms for fluidanimate, tens for raytrace —
without knowing the workload in advance.
"""

from repro.checkpoint.checkpointer import CopyFidelity
from repro.core.adaptive import AdaptiveIntervalController, \
    attach_adaptive_interval
from repro.core.config import CrimesConfig
from repro.core.crimes import Crimes
from repro.guest.linux import LinuxGuest
from repro.metrics.tables import format_table
from repro.workloads.parsec import ParsecWorkload

BENCHMARKS = ("raytrace", "swaptions", "freqmine", "fluidanimate")
NAIVE_INTERVAL_MS = 50.0
TARGET_OVERHEAD = 0.10
EPOCHS = 60


def _run(benchmark, adaptive):
    vm = LinuxGuest(name="abl-adaptive-%s-%s" % (benchmark, adaptive),
                    memory_bytes=4 * 1024 * 1024, seed=191)
    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=NAIVE_INTERVAL_MS,
                     fidelity=CopyFidelity.ACCOUNTING, seed=191),
    )
    crimes.add_program(ParsecWorkload(benchmark, seed=191,
                                      native_runtime_ms=10**9))
    if adaptive:
        attach_adaptive_interval(
            crimes,
            AdaptiveIntervalController(target_overhead=TARGET_OVERHEAD),
        )
    crimes.start()
    crimes.run(max_epochs=EPOCHS)
    final = crimes.records[-1]
    return {
        "final_interval_ms": final.interval_ms,
        "final_overhead": final.pause_ms / final.interval_ms,
    }


def test_ablation_adaptive_interval(run_once, record_result):
    def compute():
        rows = []
        for benchmark in BENCHMARKS:
            fixed = _run(benchmark, adaptive=False)
            adaptive = _run(benchmark, adaptive=True)
            rows.append(
                {
                    "benchmark": benchmark,
                    "fixed_overhead": fixed["final_overhead"],
                    "adaptive_interval_ms": adaptive["final_interval_ms"],
                    "adaptive_overhead": adaptive["final_overhead"],
                }
            )
        return rows

    rows = run_once(compute)
    record_result(
        "ablation_adaptive_interval",
        format_table(
            [
                {
                    "benchmark": row["benchmark"],
                    "fixed_50ms_overhead": "%.1f%%"
                    % (100 * row["fixed_overhead"]),
                    "adaptive_interval": "%.0f ms"
                    % row["adaptive_interval_ms"],
                    "adaptive_overhead": "%.1f%%"
                    % (100 * row["adaptive_overhead"]),
                }
                for row in rows
            ],
            ["benchmark", "fixed_50ms_overhead", "adaptive_interval",
             "adaptive_overhead"],
            title="Ablation - fixed 50 ms vs adaptive interval "
                  "(target 10%% pause overhead)",
        ),
    )

    by_benchmark = {row["benchmark"]: row for row in rows}
    # fluidanimate at a naive 50 ms pays ~40% overhead; adaptive walks
    # the interval toward the maximum and quarters the overhead.
    fluid = by_benchmark["fluidanimate"]
    assert fluid["fixed_overhead"] > 0.30
    assert fluid["adaptive_overhead"] < fluid["fixed_overhead"] / 2
    assert fluid["adaptive_interval_ms"] > 150.0
    # Light workloads need only a small nudge: their converged interval
    # stays in the tens of milliseconds (frequent audits preserved).
    assert by_benchmark["raytrace"]["adaptive_interval_ms"] < 100.0
    # The one policy lands every workload near the 10% target — the
    # per-workload hand-tuning of §3.1, automated.
    for row in rows:
        assert 0.08 < row["adaptive_overhead"] < 0.15
    # And the converged intervals are ordered by dirty-page appetite.
    intervals = [by_benchmark[b]["adaptive_interval_ms"]
                 for b in ("raytrace", "swaptions", "freqmine",
                           "fluidanimate")]
    assert intervals == sorted(intervals)