"""Figure 6a: fluidanimate normalized runtime vs epoch interval for all
four optimization levels.

Paper anchors: performance worsens at smaller intervals for every level,
but Full stays ≈3.5× faster than No-opt; fluidanimate dirties ≈5× the
pages of the lighter benchmarks, making it CRIMES's showcase.
"""

from repro.experiments import fig6a_fluidanimate
from repro.metrics.tables import format_series

LEVELS = ("full", "pre-map", "memcpy", "no-opt")
INTERVALS = (60, 80, 100, 120, 140, 160, 180, 200)


def test_fig6a(run_once, record_result):
    results = run_once(fig6a_fluidanimate, intervals=INTERVALS,
                       native_runtime_ms=1500.0)
    sections = [
        format_series(
            "Fig 6a - fluidanimate normalized runtime [%s]" % level,
            [row["interval"] for row in results[level]],
            [row["normalized_runtime"] for row in results[level]],
            x_label="interval_ms", y_label="norm_runtime",
        )
        for level in LEVELS
    ]
    record_result("fig6a_fluidanimate", "\n\n".join(sections))

    at60 = {level: results[level][0]["normalized_runtime"]
            for level in LEVELS}
    at200 = {level: results[level][-1]["normalized_runtime"]
             for level in LEVELS}
    assert at60["no-opt"] / at60["full"] > 3.0   # "3.5X faster"
    for level in LEVELS:
        assert at60[level] > at200[level]        # smaller interval = worse
    assert 4.0 < at200["no-opt"] < 5.5           # Figure 3's 4.7 anchor
