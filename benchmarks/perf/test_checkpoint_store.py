"""Wall-clock and dedup benchmarks for the content-addressed page store.

Two claims back the store PR and both are measured here, against the
flat (PR 2 delta-history) substrate as the baseline:

* **Dedup**: a fleet of same-image tenants sharing one ``PageStore``
  must hold far fewer resident bytes than the sum of its logical
  checkpoint bytes. The acceptance floor is >= 3x on the default
  64-tenant fleet (in practice identical images dedup much harder —
  the floor is deliberately conservative so CI noise cannot flake it).
* **No regression**: commit and rollback through the store must stay
  within 20% of the flat substrate's wall time at the default 64 MiB
  guest (the store swaps refcounted keys where the flat path swaps
  byte buffers — same shape, so parity is the expectation, and the
  1.2x ceiling catches an accidental O(frames) reintroduction).

Results land in ``BENCH_checkpoint_store.json`` (schema
``crimes-obs/1``). Thresholds are asserted only at full scale; set
``CRIMES_PERF_FRAMES`` / ``CRIMES_PERF_TENANTS`` to scale down for a
quick CI smoke run.
"""

import os
import random
import time

from repro.checkpoint.checkpointer import Checkpointer
from repro.checkpoint.store import PageStore
from repro.core.cloud import CloudHost
from repro.core.config import CrimesConfig
from repro.guest.linux import LinuxGuest
from repro.guest.memory import PAGE_SIZE
from repro.hypervisor.xen import Hypervisor
from repro.workloads.kvstore import KeyValueStoreProgram

DEFAULT_FRAMES = 16384  # 64 MiB of simulated RAM at 4 KiB pages
FRAMES = int(os.environ.get("CRIMES_PERF_FRAMES", DEFAULT_FRAMES))
DEFAULT_TENANTS = 64
TENANTS = int(os.environ.get("CRIMES_PERF_TENANTS", DEFAULT_TENANTS))
FULL_SCALE = FRAMES >= DEFAULT_FRAMES and TENANTS >= DEFAULT_TENANTS
RAM_BYTES = FRAMES * PAGE_SIZE
EPOCH_DIRTY = max(4, FRAMES // 50)  # ~2% dirtied per epoch
HISTORY_CAPACITY = 8
EPOCHS = 4
REPEATS = 3
MIB = 1024 * 1024

THRESHOLDS = {
    "fleet_dedup_ratio": 3.0,     # floor: resident vs logical bytes
    "commit_with_history": 1.2,   # ceiling: store_ms / flat_ms
    "rollback": 1.2,              # ceiling: store_ms / flat_ms
}


def _make_checkpointer(store=None, seed=11):
    vm = LinuxGuest(name="perf-store", memory_bytes=RAM_BYTES, seed=seed)
    domain = Hypervisor(clock=vm.clock).create_domain(vm)
    checkpointer = Checkpointer(domain, history_capacity=HISTORY_CAPACITY,
                                store=store)
    checkpointer.start()
    return checkpointer


def _epoch_samples(count=EPOCHS, size=EPOCH_DIRTY, seed=5):
    rng = random.Random(seed)
    return [rng.sample(range(FRAMES), size) for _ in range(count)]


def _dirty(vm, pfns):
    for pfn in pfns:
        vm.memory.touch_frame(pfn)


def _ratio_case(flat_ms, store_ms, detail):
    return {
        "flat_ms": flat_ms,
        "store_ms": store_ms,
        "ratio": store_ms / flat_ms if flat_ms else float("inf"),
        "detail": detail,
    }


def _bench_commit_with_history(samples):
    """commit() alone, both backends, capacity-%d history recording."""
    results = {}
    for key in ("store", "flat"):
        best = float("inf")
        for _ in range(REPEATS):
            store = PageStore() if key == "store" else None
            checkpointer = _make_checkpointer(store=store)
            for pfns in samples:
                _dirty(checkpointer.domain.vm, pfns)
                checkpointer.run_checkpoint(interval_ms=25.0)
                start = time.perf_counter()
                checkpointer.commit()
                best = min(best, time.perf_counter() - start)
        results[key] = best * 1000.0
    return _ratio_case(results["flat"], results["store"],
                       "commit() with capacity-%d history, %d dirty frames"
                       % (HISTORY_CAPACITY, EPOCH_DIRTY))


def _bench_rollback(samples):
    """rollback() after an aborted epoch plus live dirt, both backends."""
    results = {}
    split = EPOCH_DIRTY // 2
    for key in ("store", "flat"):
        best = float("inf")
        store = PageStore() if key == "store" else None
        checkpointer = _make_checkpointer(store=store)
        vm = checkpointer.domain.vm
        _dirty(vm, samples[0])
        checkpointer.run_checkpoint(interval_ms=25.0)
        checkpointer.commit()
        reference = bytes(vm.memory.view())
        for _ in range(REPEATS):
            _dirty(vm, samples[1][:split])
            checkpointer.run_checkpoint(interval_ms=25.0)
            checkpointer.abort()
            _dirty(vm, samples[1][split:])
            start = time.perf_counter()
            checkpointer.rollback()
            best = min(best, time.perf_counter() - start)
            assert bytes(vm.memory.view()) == reference
        results[key] = best * 1000.0
    return _ratio_case(results["flat"], results["store"],
                       "restore after one aborted epoch + %d live dirty "
                       "frames" % (EPOCH_DIRTY - split))


def _bench_fleet_dedup():
    """A same-image fleet on one shared store: resident vs logical."""
    store = PageStore()
    host = CloudHost(name="dedup-fleet", store=store)
    for index in range(TENANTS):
        # Same seed everywhere: the fleet boots one golden image, the
        # dedup case the store exists for. (Names must differ — they
        # key the host's tenant table — and name-derived image bytes
        # are a few pages per guest, which the conservative 3x floor
        # already absorbs.)
        vm = LinuxGuest(name="tenant-%03d" % index, memory_bytes=2 * MIB,
                        seed=1234)
        config = CrimesConfig(epoch_interval_ms=20.0, seed=1234)
        host.admit(vm, config, programs=[KeyValueStoreProgram(seed=1234)])
    start = time.perf_counter()
    host.run(2)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    stats = store.stats()
    logical_bytes = stats["logical_pages"] * PAGE_SIZE
    resident = max(stats["resident_bytes"], 1)
    return {
        "tenants": TENANTS,
        "guest_mib": 2,
        "run_ms": elapsed_ms,
        "logical_mib": logical_bytes / MIB,
        "resident_mib": stats["resident_bytes"] / MIB,
        "unique_pages": stats["unique_pages"],
        "dedup_ratio": logical_bytes / resident,
        "detail": "%d same-image 2 MiB tenants, 2 rounds, shared store"
                  % TENANTS,
    }


def test_checkpoint_store(record_bench):
    samples = _epoch_samples()
    cases = {
        "commit_with_history": _bench_commit_with_history(samples),
        "rollback": _bench_rollback(samples),
        "fleet_dedup": _bench_fleet_dedup(),
    }

    path = record_bench("checkpoint_store", extra={
        "description": "content-addressed page store: cross-tenant dedup "
                       "and store-vs-flat commit/rollback wall time",
        "frames": FRAMES,
        "ram_mib": RAM_BYTES // MIB,
        "tenants": TENANTS,
        "full_scale": FULL_SCALE,
        "thresholds": THRESHOLDS,
        "cases": cases,
    })
    assert os.path.exists(path)

    for name in ("commit_with_history", "rollback"):
        case = cases[name]
        print("%-22s flat %8.3f ms  store %8.3f ms  ratio %5.2fx"
              % (name, case["flat_ms"], case["store_ms"], case["ratio"]))
    fleet = cases["fleet_dedup"]
    print("fleet_dedup            %6.2f MiB resident for %8.2f MiB "
          "logical  (%5.1fx, %d tenants)"
          % (fleet["resident_mib"], fleet["logical_mib"],
             fleet["dedup_ratio"], fleet["tenants"]))

    assert fleet["dedup_ratio"] >= THRESHOLDS["fleet_dedup_ratio"] or \
        not FULL_SCALE, (
        "fleet dedup %.2fx < required %.1fx"
        % (fleet["dedup_ratio"], THRESHOLDS["fleet_dedup_ratio"]))
    if FULL_SCALE:
        for name in ("commit_with_history", "rollback"):
            assert cases[name]["ratio"] <= THRESHOLDS[name], (
                "%s: store path %.2fx of flat, ceiling %.1fx"
                % (name, cases[name]["ratio"], THRESHOLDS[name]))
