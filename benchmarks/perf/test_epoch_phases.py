"""Host wall-clock phase attribution for the full epoch pipeline.

Where ``test_wallclock_substrate.py`` times the checkpoint *substrate* in
isolation, this harness drives ``Crimes.run_epoch`` end to end — guest
workload, dirty harvest + staging, VMI-backed audit, commit + release,
program snapshots — under a canary-heavy workload (the §5.5 regime: tens
of thousands of live tripwires, a small dirty set per epoch), and
attributes the host time to the pipeline's phases.

The "before" side rebuilds the seed revision's hot paths from
``benchmarks/perf/legacy.py``: per-field struct decodes, the per-entry
canary filter, the copying checkpointer, and deepcopy program snapshots.
Both sides charge bit-identical *virtual* time — the harness asserts the
final virtual clocks and scan meters agree, so the speedup is pure host
efficiency, not a change in what the simulation models.

Results go to ``BENCH_epoch_phases.json``. The ``epoch_full_fidelity``
threshold (>= 5x) is asserted only at full scale; set
``CRIMES_PERF_FRAMES`` (e.g. 2048) for a quick CI smoke run.
"""

import os
import sys
import time

from repro.core.config import CrimesConfig
from repro.core.crimes import Crimes
from repro.detectors.canary import CanaryScanModule
from repro.detectors.malware import MalwareScanModule
from repro.guest.linux import LinuxGuest
from repro.guest.memory import PAGE_SIZE
from repro.sim.rng import SeededStream
from repro.workloads.base import GuestProgram

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from legacy import (  # noqa: E402
    LegacyCanaryScanModule,
    LegacyCheckpointer,
    LegacyCrimes,
    LegacyVMIInstance,
)

DEFAULT_FRAMES = 16384  # 64 MiB of simulated RAM at 4 KiB pages
FRAMES = int(os.environ.get("CRIMES_PERF_FRAMES", DEFAULT_FRAMES))
FULL_SCALE = FRAMES >= DEFAULT_FRAMES
RAM_BYTES = FRAMES * PAGE_SIZE

#: Live tripwired objects the guest maintains (~1.5 per RAM frame at
#: full scale — 24k canaries over 64 MiB, the paper's §5.5 ballpark).
LIVE_OBJECTS = max(512, int(FRAMES * 1.5))
#: Object size picks the tripwire density per heap page (~9 with the 32
#: bytes of allocator overhead); the dirty filter then passes a small
#: fraction of the table each epoch — the sparse-dirty regime §5.5's
#: 90k-canaries/ms headline depends on.
OBJECT_SIZE = 384
CHURN_PER_EPOCH = 128       # objects freed + reallocated each epoch
WRITES_PER_EPOCH = 192      # live objects rewritten each epoch
EPOCHS = 4
REPEATS = 3  # best-of; one extra repeat buys headroom against host noise

THRESHOLDS = {
    "epoch_full_fidelity": 5.0,
}

PHASES = ("speculate", "harvest+stage", "audit", "commit+release",
          "snapshot", "other")


class CanaryChurnProgram(GuestProgram):
    """A large tripwired heap with a small, deterministic epoch churn.

    bind() builds the steady-state object population; each epoch then
    frees and reallocates a handful of objects and rewrites some live
    ones, so the dirty set stays small while the canary table stays
    huge — exactly the regime the dirty-page filter exists for.
    """

    name = "canary-churn"

    def __init__(self, live_objects=LIVE_OBJECTS, object_size=OBJECT_SIZE,
                 churn=CHURN_PER_EPOCH, writes=WRITES_PER_EPOCH, seed=0):
        super().__init__()
        self.live_objects = live_objects
        self.object_size = object_size
        self.churn = churn
        self.writes = writes
        self._rng = SeededStream(seed, "canary-churn")
        self._pid = None
        self._addrs = []
        self._epoch = 0

    def bind(self, vm):
        super().bind(vm)
        heap_pages = (self.live_objects * (self.object_size + 32)
                      // PAGE_SIZE) + 64
        process = vm.create_process(
            "churnd", heap_pages=heap_pages,
            canary_capacity=2 * self.live_objects + 4096,
        )
        self._pid = process.pid
        payload = b"\x42" * self.object_size
        for _ in range(self.live_objects):
            addr = process.malloc(self.object_size)
            process.write(addr, payload)
            self._addrs.append(addr)

    @property
    def process(self):
        return self.vm.processes[self._pid]

    def step(self, start_ms, interval_ms):
        self._require_bound()
        self._epoch += 1
        process = self.process
        rng = self._rng
        for _ in range(self.churn):
            index = rng.randint(0, len(self._addrs) - 1)
            process.free(self._addrs[index])
            addr = process.malloc(self.object_size)
            process.write(addr, b"\x17" * self.object_size)
            self._addrs[index] = addr
        payload = b"%06d" % self._epoch
        for _ in range(self.writes):
            addr = self._addrs[rng.randint(0, len(self._addrs) - 1)]
            process.write(addr, payload)
        return {"synthetic_dirty": 0}

    def state_dict(self):
        return {"epoch": self._epoch, "pid": self._pid,
                "addrs": list(self._addrs)}

    def load_state_dict(self, state):
        self._epoch = state["epoch"]
        self._pid = state["pid"]
        self._addrs = list(state["addrs"])


def _make_crimes(kind, seed=31):
    """Build one epoch loop: live paths ("after") or seed paths ("before")."""
    # Same guest name on both sides: the VMI jitter stream is seeded from
    # "vmi/<name>", so differing names would fork the virtual timelines.
    vm = LinuxGuest(name="phases", memory_bytes=RAM_BYTES, seed=seed)
    config = CrimesConfig(epoch_interval_ms=25.0, seed=seed,
                          nominal_frames=FRAMES)
    if kind == "before":
        crimes = LegacyCrimes(vm, config)
        legacy_vmi = LegacyVMIInstance(crimes.domain, seed=config.seed)
        legacy_vmi.attach_flight(crimes.observer.flight)
        crimes.vmi = legacy_vmi
        crimes.detector.vmi = legacy_vmi
        crimes.checkpointer = LegacyCheckpointer(
            crimes.domain,
            level=config.optimization,
            cost_model=crimes.costs,
            fidelity=config.fidelity,
            remote=config.remote_backup,
            nominal_frames=config.nominal_frames,
            history_capacity=config.history_capacity,
            flight=crimes.observer.flight,
        )
        crimes.install_module(LegacyCanaryScanModule())
        crimes.install_module(MalwareScanModule(detect_hidden=False))
    else:
        crimes = Crimes(vm, config)
        crimes.install_module(CanaryScanModule())
        crimes.install_module(MalwareScanModule(detect_hidden=False))
    crimes.add_program(CanaryChurnProgram(seed=seed))
    crimes.start()
    return crimes


def _instrument(crimes, phases):
    """Wrap the pipeline's stage entry points with wall-clock meters."""

    def wrap(obj, attr, key):
        original = getattr(obj, attr)

        def timed(*args, **kwargs):
            begin = time.perf_counter()
            try:
                return original(*args, **kwargs)
            finally:
                phases[key] += time.perf_counter() - begin

        setattr(obj, attr, timed)

    for program in crimes.programs:
        wrap(program, "step", "speculate")
    wrap(crimes.checkpointer, "run_checkpoint", "harvest+stage")
    wrap(crimes.detector, "scan", "audit")
    wrap(crimes.checkpointer, "commit", "commit+release")
    wrap(crimes.buffer, "commit", "commit+release")
    wrap(crimes, "_snapshot_program_states", "snapshot")


def _run_epochs(kind):
    """One measured run; returns (per-epoch ms, per-phase ms, evidence)."""
    crimes = _make_crimes(kind)
    phases = dict.fromkeys(PHASES, 0.0)
    _instrument(crimes, phases)
    begin = time.perf_counter()
    for _ in range(EPOCHS):
        record = crimes.run_epoch()
        assert record.committed, "bench epochs must audit clean"
    total = time.perf_counter() - begin
    phases["other"] = total - sum(
        phases[key] for key in PHASES if key != "other")
    canary = crimes.detector.module("canary")
    evidence = {
        "virtual_now_ms": crimes.clock.now,
        "audit_cost_ms": crimes.detector.total_cost_ms,
        "canaries_checked": canary.canaries_checked,
        "freed_checked": canary.freed_regions_checked,
        "findings": sum(len(r.detection.findings) for r in crimes.records
                        if r.detection is not None),
    }
    return (
        total * 1000.0 / EPOCHS,
        {key: value * 1000.0 / EPOCHS for key, value in phases.items()},
        evidence,
    )


def test_epoch_phase_attribution(record_bench):
    best = {}
    attributions = {}
    evidences = {}
    for kind in ("after", "before"):
        best[kind] = float("inf")
        for _ in range(REPEATS):
            epoch_ms, phase_ms, evidence = _run_epochs(kind)
            if epoch_ms < best[kind]:
                best[kind] = epoch_ms
                attributions[kind] = phase_ms
            evidences[kind] = evidence

    # Equivalence evidence: both pipelines modeled the exact same
    # simulation — same virtual clock, same charged audit cost, same
    # tripwires validated, same (zero) findings. Only host time moved.
    assert evidences["before"] == evidences["after"], (
        "seed-path run diverged from live-path run: %r != %r"
        % (evidences["before"], evidences["after"])
    )
    assert evidences["after"]["canaries_checked"] > 0

    case = {
        "before_ms": best["before"],
        "after_ms": best["after"],
        "speedup": best["before"] / best["after"],
        "detail": "full run_epoch, %d live canaries, %d churned + %d "
                  "rewritten objects per epoch" % (
                      LIVE_OBJECTS, CHURN_PER_EPOCH, WRITES_PER_EPOCH),
    }

    path = record_bench("epoch_phases", extra={
        "description": "host wall-clock phase attribution of the full "
                       "epoch pipeline, live paths vs the seed revision",
        "frames": FRAMES,
        "ram_mib": RAM_BYTES // (1024 * 1024),
        "full_scale": FULL_SCALE,
        "live_canaries": LIVE_OBJECTS,
        "epochs": EPOCHS,
        "thresholds": THRESHOLDS,
        "cases": {"epoch_full_fidelity": case},
        "phase_ms": attributions,
        "evidence": evidences["after"],
    })
    assert os.path.exists(path)

    print("%-16s %10s %10s" % ("phase", "before ms", "after ms"))
    for key in PHASES:
        print("%-16s %10.3f %10.3f"
              % (key, attributions["before"][key], attributions["after"][key]))
    print("%-16s %10.3f %10.3f  (%.1fx)"
          % ("epoch total", case["before_ms"], case["after_ms"],
             case["speedup"]))

    if FULL_SCALE:
        assert case["speedup"] >= THRESHOLDS["epoch_full_fidelity"], (
            "epoch_full_fidelity: %.2fx < required %.1fx"
            % (case["speedup"], THRESHOLDS["epoch_full_fidelity"])
        )
