"""Wall-clock before/after microbenchmarks for the epoch substrate.

Unlike everything under ``benchmarks/results/`` — which measures the
paper's *virtual-time* cost model and must stay bit-identical — this
suite times the host-side hot paths the delta-checkpoint / zero-copy PR
rewrote, against the seed-revision reference implementations kept in
``benchmarks/perf/legacy.py``:

* ``epoch_full_fidelity`` — one FULL-fidelity epoch end to end
  (harvest + stage + commit, history disabled),
* ``commit_with_history``  — commit() with a capacity-8 history ring
  (the seed materialized ``bytes(backup)`` + a deepcopy per commit),
* ``rollback``             — restore after an aborted epoch (the seed
  diffed every frame of RAM in a Python loop),
* ``bitmap_harvest``       — word-scan harvest at 10% dirty density
  (the seed looped a Python list of ints word by word).

Results are written to ``BENCH_wallclock_substrate.json`` (schema
``crimes-obs/1``). Numbers are host-dependent by nature; the acceptance
thresholds (>= 5x on commit-with-history and rollback, >= 2x on harvest)
are asserted only at the default 64 MiB size. Set ``CRIMES_PERF_FRAMES``
(e.g. 2048) to scale the simulated RAM down for a quick CI smoke run.
"""

import os
import random
import sys
import time

from repro.checkpoint.checkpointer import Checkpointer
from repro.guest.linux import LinuxGuest
from repro.guest.memory import PAGE_SIZE
from repro.hypervisor.dirty import DirtyBitmap
from repro.hypervisor.xen import Hypervisor

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from legacy import LegacyCheckpointer, LegacyWordBitmap  # noqa: E402

DEFAULT_FRAMES = 16384  # 64 MiB of simulated RAM at 4 KiB pages
FRAMES = int(os.environ.get("CRIMES_PERF_FRAMES", DEFAULT_FRAMES))
FULL_SCALE = FRAMES >= DEFAULT_FRAMES
RAM_BYTES = FRAMES * PAGE_SIZE
EPOCH_DIRTY = max(4, FRAMES // 50)  # ~2% dirtied per epoch (25 ms epochs)
HARVEST_DENSITY = 0.10
HISTORY_CAPACITY = 8
EPOCHS = 4
REPEATS = 3

THRESHOLDS = {
    "commit_with_history": 5.0,
    "rollback": 5.0,
    "bitmap_harvest": 2.0,
    # The substrate's end-to-end epoch case is memory-bandwidth-bound
    # (its dirty set is synthetic and the audit trivial), so its floor
    # is modest; the full-pipeline >= 5x floor lives in
    # test_epoch_phases.py, whose workload exercises the VMI/detector
    # hot paths this case cannot.
    "epoch_full_fidelity": 1.4,
}


def _make_checkpointer(cls, history_capacity=0, seed=11):
    vm = LinuxGuest(name="perf", memory_bytes=RAM_BYTES, seed=seed)
    domain = Hypervisor(clock=vm.clock).create_domain(vm)
    checkpointer = cls(domain, history_capacity=history_capacity)
    checkpointer.start()
    return checkpointer


def _epoch_samples(count=EPOCHS, size=EPOCH_DIRTY, seed=5):
    rng = random.Random(seed)
    return [rng.sample(range(FRAMES), size) for _ in range(count)]


def _dirty(vm, pfns):
    for pfn in pfns:
        vm.memory.touch_frame(pfn)


def _case(before_ms, after_ms, detail):
    return {
        "before_ms": before_ms,
        "after_ms": after_ms,
        "speedup": before_ms / after_ms if after_ms else float("inf"),
        "detail": detail,
    }


def _bench_epoch_full_fidelity(samples):
    """run_checkpoint() + commit() per epoch, history disabled."""
    results = {}
    for key, cls in (("after", Checkpointer), ("before", LegacyCheckpointer)):
        best = float("inf")
        for _ in range(REPEATS):
            checkpointer = _make_checkpointer(cls)
            elapsed = 0.0
            for pfns in samples:
                _dirty(checkpointer.domain.vm, pfns)
                start = time.perf_counter()
                checkpointer.run_checkpoint(interval_ms=25.0)
                checkpointer.commit()
                elapsed += time.perf_counter() - start
            best = min(best, elapsed / len(samples))
        results[key] = best * 1000.0
    return _case(results["before"], results["after"],
                 "per-epoch harvest+stage+commit, %d dirty frames"
                 % EPOCH_DIRTY)


def _bench_commit_with_history(samples):
    """commit() alone, capacity-%d history ring recording each epoch."""
    results = {}
    for key, cls in (("after", Checkpointer), ("before", LegacyCheckpointer)):
        best = float("inf")
        for _ in range(REPEATS):
            checkpointer = _make_checkpointer(
                cls, history_capacity=HISTORY_CAPACITY)
            for pfns in samples:
                _dirty(checkpointer.domain.vm, pfns)
                checkpointer.run_checkpoint(interval_ms=25.0)
                start = time.perf_counter()
                checkpointer.commit()
                best = min(best, time.perf_counter() - start)
        results[key] = best * 1000.0
    return _case(results["before"], results["after"],
                 "commit() with capacity-%d history, %d dirty frames"
                 % (HISTORY_CAPACITY, EPOCH_DIRTY))


def _bench_rollback(samples):
    """rollback() after a committed epoch, an aborted one, and live dirt."""
    results = {}
    split = EPOCH_DIRTY // 2
    for key, cls in (("after", Checkpointer), ("before", LegacyCheckpointer)):
        best = float("inf")
        checkpointer = _make_checkpointer(cls)
        vm = checkpointer.domain.vm
        _dirty(vm, samples[0])
        checkpointer.run_checkpoint(interval_ms=25.0)
        checkpointer.commit()
        reference = bytes(vm.memory.view())
        for _ in range(REPEATS):
            _dirty(vm, samples[1][:split])
            checkpointer.run_checkpoint(interval_ms=25.0)
            checkpointer.abort()
            _dirty(vm, samples[1][split:])
            start = time.perf_counter()
            checkpointer.rollback()
            best = min(best, time.perf_counter() - start)
            assert bytes(vm.memory.view()) == reference
        results[key] = best * 1000.0
    return _case(results["before"], results["after"],
                 "restore after one aborted epoch + %d live dirty frames"
                 % (EPOCH_DIRTY - split))


def _bench_bitmap_harvest():
    """harvest() (word scan + clear) at 10% dirty density."""
    rng = random.Random(7)
    dirty_pfns = rng.sample(range(FRAMES), int(FRAMES * HARVEST_DENSITY))

    new_bitmap = DirtyBitmap(FRAMES)
    old_bitmap = LegacyWordBitmap(FRAMES)
    results = {}
    expected = None
    for key, bitmap in (("after", new_bitmap), ("before", old_bitmap)):
        best = float("inf")
        for _ in range(REPEATS):
            if key == "after":
                bitmap.set_many(dirty_pfns)
            else:
                for pfn in dirty_pfns:
                    bitmap.set(pfn)
            start = time.perf_counter()
            dirty, stats = bitmap.harvest(True)
            best = min(best, time.perf_counter() - start)
        # Both backends must agree on the dirty set and the virtual-cost
        # inputs — the scan stats feed the paper's cost model.
        if expected is None:
            expected = (dirty, stats.words_visited, stats.bits_visited,
                        stats.dirty_found)
        else:
            assert dirty == expected[0]
            assert (stats.words_visited, stats.bits_visited,
                    stats.dirty_found) == expected[1:]
        results[key] = best * 1000.0
    return _case(results["before"], results["after"],
                 "word-scan harvest of %d dirty frames (10%% density)"
                 % len(dirty_pfns))


def test_wallclock_substrate(record_bench):
    samples = _epoch_samples()
    cases = {
        "epoch_full_fidelity": _bench_epoch_full_fidelity(samples),
        "commit_with_history": _bench_commit_with_history(samples),
        "rollback": _bench_rollback(samples),
        "bitmap_harvest": _bench_bitmap_harvest(),
    }

    path = record_bench("wallclock_substrate", extra={
        "description": "host wall-clock before/after for the delta-"
                       "checkpoint and zero-copy substrate rewrite",
        "frames": FRAMES,
        "ram_mib": RAM_BYTES // (1024 * 1024),
        "full_scale": FULL_SCALE,
        "thresholds": THRESHOLDS,
        "cases": cases,
    })
    assert os.path.exists(path)

    for name, case in sorted(cases.items()):
        print("%-22s before %8.3f ms  after %8.3f ms  speedup %6.1fx"
              % (name, case["before_ms"], case["after_ms"],
                 case["speedup"]))

    if FULL_SCALE:
        for name, floor in THRESHOLDS.items():
            assert cases[name]["speedup"] >= floor, (
                "%s: %.2fx < required %.1fx"
                % (name, cases[name]["speedup"], floor)
            )
