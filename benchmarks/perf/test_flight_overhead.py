"""Flight-recorder self-overhead: the always-on journal must stay cheap.

The recorder charges every ``record()`` call to its own wall-clock
meter (``FlightRecorder.overhead_wall_s``); this benchmark drives a
CRIMES-protected guest — including a detected attack, so the incident
path journals too — and compares that meter against the host wall time
of the whole epoch loop. The acceptance bar is the one the VMI
container-monitoring literature sets for always-on monitors: the
journal's own cost must stay **under 5%** of epoch wall time.

Results go to ``BENCH_flight_overhead.json`` (schema ``crimes-obs/1``).
The epoch count scales with ``CRIMES_PERF_FRAMES`` so the CI smoke run
(2048) stays quick while the default run measures a longer loop; the 5%
assertion holds at every scale — per-event cost is size-independent.
"""

import os
import time

from repro.core.config import CrimesConfig
from repro.core.crimes import Crimes
from repro.detectors.canary import CanaryScanModule
from repro.guest.linux import LinuxGuest
from repro.workloads.attacks import OverflowAttackProgram
from repro.workloads.webserver import WebServerWorkload

DEFAULT_FRAMES = 16384
FRAMES = int(os.environ.get("CRIMES_PERF_FRAMES", DEFAULT_FRAMES))
#: 256 epochs on the CI smoke, 512 at full scale (the guest heap feeds
#: the web workload for ~1500 epochs before it would run dry).
EPOCHS = max(32, min(512, FRAMES // 8))
OVERHEAD_CEILING_PCT = 5.0


def _drive(epochs, seed=31):
    vm = LinuxGuest(name="flight-perf", memory_bytes=8 * 1024 * 1024,
                    seed=seed)
    crimes = Crimes(
        vm, CrimesConfig(epoch_interval_ms=25.0, seed=seed,
                         history_capacity=4)
    )
    crimes.install_module(CanaryScanModule())
    crimes.add_program(WebServerWorkload("light", seed=seed))
    # A detection at the end exercises the incident/bundle journal path.
    crimes.add_program(OverflowAttackProgram(trigger_epoch=epochs))
    crimes.start()
    start = time.perf_counter()
    crimes.run(max_epochs=epochs)
    wall_s = time.perf_counter() - start
    return crimes, wall_s


def test_flight_recorder_overhead(record_bench):
    crimes, wall_s = _drive(EPOCHS)
    recorder = crimes.observer.flight
    overhead = recorder.overhead()
    overhead_pct = 100.0 * overhead["wall_s"] / wall_s
    per_event_us = (1e6 * overhead["wall_s"] / overhead["events_recorded"]
                    if overhead["events_recorded"] else 0.0)

    assert crimes.last_incident is not None  # the incident path journaled
    assert recorder.verify_chain()["ok"]

    path = record_bench("flight_overhead", extra={
        "description": "flight-recorder self-overhead vs epoch wall time",
        "epochs": crimes.epochs_run,
        "events_recorded": overhead["events_recorded"],
        "events_retained": len(recorder),
        "evicted": recorder.evicted,
        "recorder_wall_s": overhead["wall_s"],
        "loop_wall_s": wall_s,
        "overhead_pct": overhead_pct,
        "per_event_us": per_event_us,
        "ceiling_pct": OVERHEAD_CEILING_PCT,
    })
    assert os.path.exists(path)

    print("flight recorder: %d events in %.3fs loop -> %.3f%% overhead "
          "(%.2f us/event)"
          % (overhead["events_recorded"], wall_s, overhead_pct,
             per_event_us))

    assert overhead_pct < OVERHEAD_CEILING_PCT, (
        "flight recorder costs %.2f%% of epoch wall time (ceiling %.1f%%)"
        % (overhead_pct, OVERHEAD_CEILING_PCT)
    )
