"""Case-service throughput: ingest, cross-case query, worker drain.

Measures the control plane's three hot paths with real evidence:

* **ingest** — distinct ``crimes-obs/2`` bundles (each from its own
  seeded attack run) through ``CaseVault.ingest``, which re-derives the
  flight hash chain and causal epoch chain per bundle — the number is
  *verified* ingests/s, not file writes/s;
* **HTTP ingest + query** — the same bundles POSTed through a live
  listener, then cross-tenant ``/findings`` queries, measuring the full
  socket -> validate -> store -> query round trip;
* **worker drain** — one forensics job per case (Volatility plugin pass
  over the attached memory dump), wall time from enqueue to drain.

Results go to ``BENCH_case_service.json`` (schema ``crimes-obs/1``).
Bundle count scales with ``CRIMES_SERVICE_BUNDLES`` (default 12); the
asserted floors are deliberately loose — they gate "did the control
plane get pathologically slow", not a specific machine's numbers.
"""

import json
import os
import time
import urllib.request

from repro.core.config import CrimesConfig
from repro.core.crimes import Crimes
from repro.detectors.canary import CanaryScanModule
from repro.detectors.syscall_table import SyscallTableModule
from repro.forensics.dumps import MemoryDump
from repro.guest.linux import LinuxGuest
from repro.service.http import CaseService
from repro.service.vault import CaseVault
from repro.service.workers import ForensicsWorkerQueue
from repro.workloads.attacks import OverflowAttackProgram, RootkitProgram
from repro.workloads.webserver import WebServerWorkload

BUNDLES = int(os.environ.get("CRIMES_SERVICE_BUNDLES", 12))
QUERY_ROUNDS = 50

#: Loose sanity floors (see module docstring).
MIN_INGEST_PER_S = 5.0
MIN_QUERY_PER_S = 20.0
MAX_DRAIN_S = 60.0


def make_evidence(count):
    """``count`` distinct (bundle, dump) pairs from seeded attack runs."""
    pairs = []
    for index in range(count):
        seed = 1000 + index
        vm = LinuxGuest(name="bench-%03d" % index,
                        memory_bytes=2 * 1024 * 1024, seed=seed)
        crimes = Crimes(vm, CrimesConfig(epoch_interval_ms=50.0,
                                         seed=seed, auto_respond=False,
                                         history_capacity=4))
        if index % 2 == 0:
            crimes.install_module(SyscallTableModule())
            crimes.add_program(RootkitProgram(trigger_epoch=2))
        else:
            crimes.install_module(CanaryScanModule())
            crimes.add_program(OverflowAttackProgram(trigger_epoch=3))
        crimes.add_program(WebServerWorkload("light", seed=seed))
        crimes.start()
        crimes.run(max_epochs=6)
        assert crimes.last_incident is not None
        pairs.append((crimes.last_incident,
                      MemoryDump.from_vm(vm, label="bench")))
    return pairs


def bench_vault_ingest(root, evidence):
    vault = CaseVault(root)
    start = time.perf_counter()
    for bundle, dump in evidence:
        vault.ingest(bundle, dump=dump)
    wall_s = time.perf_counter() - start
    return vault, {
        "bundles": len(evidence),
        "wall_s": wall_s,
        "ingests_per_s": len(evidence) / wall_s if wall_s else 0.0,
    }


def bench_queries(vault):
    filters = ({}, {"module": "syscall_table"}, {"module": "canary"},
               {"since": 100.0})
    start = time.perf_counter()
    rows = 0
    for index in range(QUERY_ROUNDS):
        rows += len(vault.findings(**filters[index % len(filters)]))
    wall_s = time.perf_counter() - start
    return {
        "queries": QUERY_ROUNDS,
        "rows_returned": rows,
        "wall_s": wall_s,
        "queries_per_s": QUERY_ROUNDS / wall_s if wall_s else 0.0,
    }


def bench_http(root, evidence):
    service = CaseService(CaseVault(root), workers=1, seed=0).start()
    try:
        start = time.perf_counter()
        for bundle, _ in evidence:
            request = urllib.request.Request(
                service.url + "/cases",
                data=json.dumps(bundle).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request) as resp:
                assert resp.status == 201
        ingest_s = time.perf_counter() - start
        start = time.perf_counter()
        for path in ("/findings", "/findings?module=syscall_table",
                     "/cases", "/slo", "/metrics") * 4:
            with urllib.request.urlopen(service.url + path) as resp:
                assert resp.status == 200
                resp.read()
        query_s = time.perf_counter() - start
    finally:
        service.stop()
    return {
        "ingest_wall_s": ingest_s,
        "ingests_per_s": len(evidence) / ingest_s if ingest_s else 0.0,
        "query_requests": 20,
        "query_wall_s": query_s,
        "queries_per_s": 20 / query_s if query_s else 0.0,
    }


def bench_worker_drain(vault):
    queue = ForensicsWorkerQueue(vault, workers=2, seed=0).start()
    try:
        case_ids = vault.case_ids()
        start = time.perf_counter()
        for case_id in case_ids:
            queue.enqueue(case_id)
        result = queue.drain(timeout_ms=MAX_DRAIN_S * 1000.0)
        wall_s = time.perf_counter() - start
    finally:
        queue.stop()
    assert result["failed"] == 0
    return {
        "jobs": len(case_ids),
        "wall_s": wall_s,
        "jobs_per_s": len(case_ids) / wall_s if wall_s else 0.0,
        "mean_job_s": wall_s / len(case_ids) if case_ids else 0.0,
    }


def test_case_service_throughput(record_bench, tmp_path):
    evidence = make_evidence(BUNDLES)

    vault, ingest = bench_vault_ingest(tmp_path / "direct", evidence)
    queries = bench_queries(vault)
    http = bench_http(tmp_path / "http", evidence)
    drain = bench_worker_drain(vault)

    payload = {
        "description": "incident case service hot paths: verified "
                       "bundle ingest, cross-case findings queries, "
                       "HTTP round trips, forensics worker drain",
        "bundles": BUNDLES,
        "host_cpu_count": os.cpu_count(),
        "thresholds": {
            "min_vault_ingests_per_s": MIN_INGEST_PER_S,
            "min_queries_per_s": MIN_QUERY_PER_S,
            "max_drain_s": MAX_DRAIN_S,
        },
        "vault_ingest": ingest,
        "vault_query": queries,
        "http": http,
        "worker_drain": drain,
    }
    path = record_bench("case_service", extra=payload)
    assert os.path.exists(path)

    print("bundles=%d host_cpu_count=%s" % (BUNDLES, os.cpu_count()))
    print("vault ingest: %6.1f verified bundles/s" %
          ingest["ingests_per_s"])
    print("vault query:  %6.1f queries/s (%d rows)"
          % (queries["queries_per_s"], queries["rows_returned"]))
    print("http ingest:  %6.1f bundles/s; queries %6.1f req/s"
          % (http["ingests_per_s"], http["queries_per_s"]))
    print("worker drain: %d jobs in %.2f s (%.2f s/job)"
          % (drain["jobs"], drain["wall_s"], drain["mean_job_s"]))

    assert ingest["ingests_per_s"] >= MIN_INGEST_PER_S
    assert queries["queries_per_s"] >= MIN_QUERY_PER_S
    assert drain["wall_s"] <= MAX_DRAIN_S
