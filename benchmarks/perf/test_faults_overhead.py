"""Fault-plane hook overhead: disarmed probes must be (almost) free.

The injector's probes are compiled into the epoch loop's hot path
unconditionally — ``OutputBuffer._release_gate``, the checkpointer's
harvest/copy/sync seams, every VMI read charge. This benchmark drives
the identical seeded workload twice, once with no injector at all
(``fault_plan=None``) and once with a disarmed injector
(``FaultPlan.none()``: hooks installed, every probe a guaranteed-miss
dict lookup), and holds the wall-time delta **under 2%**.

Both configurations take the min of N repetitions so scheduler noise
does not masquerade as hook cost. Results go to
``BENCH_faults_overhead.json``; the epoch count scales with
``CRIMES_PERF_FRAMES`` like the other perf benchmarks.
"""

import os
import time

from repro.core.config import CrimesConfig
from repro.core.crimes import Crimes
from repro.detectors import SyscallTableModule
from repro.faults import FaultPlan
from repro.guest.linux import LinuxGuest
from repro.workloads.webserver import WebServerWorkload

DEFAULT_FRAMES = 16384
FRAMES = int(os.environ.get("CRIMES_PERF_FRAMES", DEFAULT_FRAMES))
EPOCHS = max(32, min(512, FRAMES // 8))
REPETITIONS = 5
OVERHEAD_CEILING_PCT = 2.0


def _drive(fault_plan, epochs=EPOCHS, seed=47):
    vm = LinuxGuest(name="faults-perf", memory_bytes=8 * 1024 * 1024,
                    seed=seed)
    crimes = Crimes(
        vm, CrimesConfig(epoch_interval_ms=25.0, seed=seed,
                         history_capacity=4),
        fault_plan=fault_plan,
    )
    crimes.install_module(SyscallTableModule())
    crimes.add_program(WebServerWorkload("light", seed=seed))
    crimes.start()
    start = time.perf_counter()
    crimes.run(max_epochs=epochs)
    wall_s = time.perf_counter() - start
    return crimes, wall_s


def test_disarmed_fault_hooks_are_cheap(record_bench):
    _drive(None, epochs=32)  # warm caches/allocator before timing
    # Interleave the two configurations so load drift hits both alike;
    # min-of-N strips the remaining scheduler noise.
    bare_s = disarmed_s = None
    for _ in range(REPETITIONS):
        crimes, wall_s = _drive(None)
        assert crimes.epochs_run == EPOCHS
        bare_s = wall_s if bare_s is None else min(bare_s, wall_s)
        crimes, wall_s = _drive(FaultPlan.none())
        assert crimes.epochs_run == EPOCHS
        disarmed_s = wall_s if disarmed_s is None else min(disarmed_s,
                                                           wall_s)
    overhead_pct = 100.0 * (disarmed_s - bare_s) / bare_s

    path = record_bench("faults_overhead", extra={
        "description": "disarmed fault-injector hooks vs no injector",
        "epochs": EPOCHS,
        "repetitions": REPETITIONS,
        "bare_wall_s": bare_s,
        "disarmed_wall_s": disarmed_s,
        "overhead_pct": overhead_pct,
        "ceiling_pct": OVERHEAD_CEILING_PCT,
    })
    assert os.path.exists(path)

    print("fault hooks: bare %.4fs, disarmed %.4fs -> %+.3f%% "
          "(ceiling %.1f%%)"
          % (bare_s, disarmed_s, overhead_pct, OVERHEAD_CEILING_PCT))
    assert overhead_pct < OVERHEAD_CEILING_PCT, (
        "disarmed fault hooks cost %.3f%% of epoch wall time "
        "(ceiling %.1f%%)" % (overhead_pct, OVERHEAD_CEILING_PCT)
    )
