"""Fleet-round throughput: serial CloudHost vs the sharded scheduler.

Measures three things about driving a large multi-tenant fleet:

* **serial baseline** — wall time per ``CloudHost.run_round()`` over
  the whole fleet, one Python process (the pre-fleet status quo);
* **modeled sharded round** — per-tenant epoch wall costs measured
  individually, dispatched under :func:`repro.core.fleet.lpt_assignment`
  (the idealized work-stealing schedule the scheduler uses): the round
  makespan a W-core host achieves when every shard runs truly in
  parallel. This is the *gated* number — the container this benchmark
  runs in may expose a single core (``host_cpu_count`` is recorded in
  the JSON), where real 4-worker wall time cannot beat serial no matter
  how the work is sharded;
* **real process backend** — actual wall time of
  ``FleetScheduler(backend="process")`` batched rounds on this host,
  reported informationally (it includes fork + IPC cost and is bounded
  by the cores actually present).

The sharded run must also be *correct*: the benchmark asserts digest
equivalence (virtual clocks, epoch counts, incident sets, hash-chain
heads) between the serial host and the sharded scheduler before any
throughput number is recorded.

Results go to ``BENCH_fleet_throughput.json`` (schema ``crimes-obs/1``).
The acceptance floor — modeled speedup >= 3.0x at 4 workers — is
asserted at the default 256-tenant scale; set ``CRIMES_FLEET_TENANTS``
(e.g. 16) for a quick CI smoke run with a relaxed >= 1.5x floor.
"""

import os
import time

from repro.core.cloud import CloudHost
from repro.core.fleet import (
    FleetScheduler,
    default_tenant_spec,
    lpt_assignment,
)

DEFAULT_TENANTS = 256
TENANTS = int(os.environ.get("CRIMES_FLEET_TENANTS", DEFAULT_TENANTS))
FULL_SCALE = TENANTS >= DEFAULT_TENANTS
ROUNDS = 5
WORKER_COUNTS = (1, 2, 4, 8)
GATED_WORKERS = 4

#: Modeled round-speedup floor at GATED_WORKERS workers. 256 near-even
#: tenants pack almost perfectly, so the 4-worker LPT schedule should
#: sit close to 4.0x; 3.0x leaves headroom for cost skew from the
#: attacked/suspended tenants. The smoke floor is looser because tiny
#: fleets pack worse.
THRESHOLD_SPEEDUP = 3.0 if FULL_SCALE else 1.5

EQUIV_KEYS = ("clock_ms", "epochs_run", "suspended", "quarantined",
              "quarantine_reason", "flight_head")


def make_specs():
    specs = []
    for index in range(TENANTS):
        specs.append(default_tenant_spec(
            "tenant-%04d" % index, seed=index,
            sla=("premium", "standard", "batch", "spot")[index % 4],
            # A sparse minority of tenants detect an attack mid-run, so
            # the fleet carries suspended tenants like a real host.
            attack_epoch=3 if index % 16 == 0 else None))
    return specs


def admit_all(host, specs):
    for spec in specs:
        parts = spec.build()
        host.admit(parts["vm"], parts.get("config"),
                   modules=parts.get("modules", ()),
                   programs=parts.get("programs", ()),
                   sla=spec.sla, fault_plan=parts.get("fault_plan"),
                   priority=spec.priority)


def equiv_view(digests):
    return {name: {key: digest[key] for key in EQUIV_KEYS}
            for name, digest in digests.items()}


def bench_serial(specs):
    """Wall time of the serial CloudHost round loop."""
    host = CloudHost()
    admit_all(host, specs)
    round_ms = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        host.run_round()
        round_ms.append((time.perf_counter() - start) * 1000.0)
    epochs = sum(digest["epochs_run"]
                 for digest in host.tenant_digests().values())
    wall_s = sum(round_ms) / 1000.0
    return {
        "round_ms": round_ms,
        "mean_round_ms": sum(round_ms) / len(round_ms),
        "epochs": epochs,
        "epochs_per_s": epochs / wall_s if wall_s else 0.0,
    }, host.tenant_digests()


def bench_per_tenant_costs(specs):
    """Mean per-tenant epoch wall cost, measured tenant by tenant.

    Drives the same schedule ``run_round`` uses but times each tenant's
    ``run_epoch`` individually — the job sizes the dispatch model feeds
    to LPT.
    """
    host = CloudHost()
    admit_all(host, specs)
    totals = {}
    counts = {}
    for _ in range(ROUNDS):
        for record in host.scheduled_tenants():
            start = time.perf_counter()
            record.crimes.run_epoch()
            elapsed = (time.perf_counter() - start) * 1000.0
            totals[record.name] = totals.get(record.name, 0.0) + elapsed
            counts[record.name] = counts.get(record.name, 0) + 1
    return {name: totals[name] / counts[name] for name in totals}


def model_sharded_rounds(costs):
    """LPT makespan of one mean round at each worker count."""
    serial_ms = sum(costs.values())
    modeled = {}
    for workers in WORKER_COUNTS:
        _, makespan = lpt_assignment(costs, workers)
        modeled[str(workers)] = {
            "makespan_ms": makespan,
            "speedup": serial_ms / makespan if makespan else 1.0,
        }
    return {"serial_ms": serial_ms, "workers": modeled}


def bench_process_backend(specs, workers):
    """Real wall time of the process backend on this host."""
    with FleetScheduler(workers=workers, backend="process") as fleet:
        for spec in specs:
            fleet.admit(spec)
        start = time.perf_counter()
        fleet.run_rounds(ROUNDS)
        wall_s = time.perf_counter() - start
        rollup = fleet.rollup()
        digests = fleet.tenant_digests()
    epochs = rollup["epochs_total"]
    return {
        "wall_s": wall_s,
        "mean_round_ms": wall_s * 1000.0 / ROUNDS,
        "epochs": epochs,
        "epochs_per_s": epochs / wall_s if wall_s else 0.0,
        "round_pause_p99_ms": rollup["round_pause_ms"]["p99"],
    }, digests


def test_fleet_throughput(record_bench):
    specs = make_specs()

    serial, serial_digests = bench_serial(specs)
    costs = bench_per_tenant_costs(specs)
    model = model_sharded_rounds(costs)

    process_workers = 2 if TENANTS < 64 else GATED_WORKERS
    process, process_digests = bench_process_backend(specs,
                                                     process_workers)

    # Correctness first: the sharded run simulated the same fleet.
    assert equiv_view(process_digests) == equiv_view(serial_digests)

    gated = model["workers"][str(GATED_WORKERS)]
    payload = {
        "description": "fleet-round throughput: serial CloudHost vs "
                       "LPT-sharded scheduler (modeled) and the real "
                       "process backend on this host",
        "tenants": TENANTS,
        "rounds": ROUNDS,
        "full_scale": FULL_SCALE,
        "host_cpu_count": os.cpu_count(),
        "thresholds": {
            "modeled_speedup_at_%d_workers" % GATED_WORKERS:
                THRESHOLD_SPEEDUP,
        },
        "serial": serial,
        "modeled": model,
        "process_backend": {
            "workers": process_workers,
            **process,
        },
        "equivalence": "serial and sharded digests agree "
                       "(incl. flight hash-chain heads)",
    }
    path = record_bench("fleet_throughput", extra=payload)
    assert os.path.exists(path)

    print("tenants=%d rounds=%d host_cpu_count=%s"
          % (TENANTS, ROUNDS, os.cpu_count()))
    print("serial:   %8.1f ms/round  (%.0f epochs/s)"
          % (serial["mean_round_ms"], serial["epochs_per_s"]))
    for workers in WORKER_COUNTS:
        row = model["workers"][str(workers)]
        print("modeled %dw: %7.1f ms/round  speedup %5.2fx"
              % (workers, row["makespan_ms"], row["speedup"]))
    print("process %dw: %7.1f ms/round  (%.0f epochs/s, incl. IPC)"
          % (process_workers, process["mean_round_ms"],
             process["epochs_per_s"]))

    assert gated["speedup"] >= THRESHOLD_SPEEDUP, (
        "modeled %d-worker round speedup %.2fx < required %.2fx"
        % (GATED_WORKERS, gated["speedup"], THRESHOLD_SPEEDUP)
    )
