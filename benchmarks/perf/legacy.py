"""Seed-revision reference implementations for the wall-clock suite.

These reproduce the pre-optimization hot paths the delta-checkpoint /
zero-copy PR replaced:

* ``LegacyCheckpointer`` — commit() materializes a full ``bytes`` RAM
  image plus a deepcopy per committed epoch when history is enabled;
  rollback() diffs every frame of RAM against the backup in a Python
  loop; staging copies each dirty frame with ``read_frame``.
* ``LegacyWordBitmap`` — the seed's list-of-ints dirty bitmap with the
  per-word Python-loop scan and the tail filter.

The wall-clock benchmarks time these against the live implementations so
``BENCH_wallclock_substrate.json`` records a true before/after on the
same host. Virtual-time outputs are identical on both sides by
construction; only host time differs.
"""

import copy

from repro.checkpoint.checkpointer import Checkpointer, CopyFidelity
from repro.checkpoint.snapshot import Checkpoint
from repro.errors import CheckpointError
from repro.guest.memory import PAGE_SIZE
from repro.hypervisor.dirty import ScanStats, WORD_BITS


class LegacyCheckpointer(Checkpointer):
    """Checkpointer with the seed revision's O(RAM) commit/rollback."""

    def run_checkpoint(self, interval_ms, synthetic_dirty=0):
        # Re-stage with per-frame byte copies (the seed's staging path).
        report = super().run_checkpoint(interval_ms,
                                        synthetic_dirty=synthetic_dirty)
        if self._pending is not None and self._pending["pages"] is not None:
            memory = self.domain.vm.memory
            self._pending["pages"] = [
                (pfn, memory.read_frame(pfn))
                for pfn, _view in self._pending["pages"]
            ]
        return report

    def commit(self):
        if self._pending is None:
            raise CheckpointError("no staged checkpoint to commit")
        pending, self._pending = self._pending, None
        if self.fidelity is CopyFidelity.FULL:
            for pfn, data in pending["pages"]:
                start = pfn * PAGE_SIZE
                self._backup_image[start : start + PAGE_SIZE] = data
            self._backup_state = pending["state"]
            self._backup_taken_at = pending["taken_at"]
            if self.history.capacity:
                self.history.record(
                    Checkpoint(
                        epoch=self.epoch,
                        taken_at=pending["taken_at"],
                        memory_image=bytes(self._backup_image),
                        guest_state=copy.deepcopy(self._backup_state),
                        dirty_pages=pending["dirty"],
                        label="epoch-%d" % self.epoch,
                    )
                )

    def rollback(self):
        vm = self.domain.vm
        differing = 0
        image = self._backup_image
        for pfn in range(vm.memory.frame_count):
            start = pfn * PAGE_SIZE
            if vm.memory.read_frame(pfn) != bytes(
                    image[start : start + PAGE_SIZE]):
                differing += 1
        vm.memory.load_bytes(bytes(image))
        vm.load_state_dict(copy.deepcopy(self._backup_state))
        self.domain.dirty_bitmap.clear()
        self._pending = None
        self._dirty_since_backup = set()
        self._untracked_seen = vm.memory.untracked_loads
        return self.costs.rollback_ms(differing)


class LegacyWordBitmap:
    """The seed's dirty bitmap: a Python list of 64-bit words."""

    def __init__(self, frame_count):
        self.frame_count = frame_count
        self.word_count = (frame_count + WORD_BITS - 1) // WORD_BITS
        self._words = [0] * self.word_count
        self._dirty_count = 0

    def set(self, pfn):
        word, bit = divmod(pfn, WORD_BITS)
        mask = 1 << bit
        if not self._words[word] & mask:
            self._words[word] |= mask
            self._dirty_count += 1

    def clear(self):
        self._words = [0] * self.word_count
        self._dirty_count = 0

    def scan_by_words(self):
        dirty = []
        bits_visited = 0
        for word_index, word in enumerate(self._words):
            if word == 0:
                continue
            base = word_index * WORD_BITS
            bits_visited += WORD_BITS
            while word:
                low = word & -word
                dirty.append(base + low.bit_length() - 1)
                word ^= low
        dirty = [pfn for pfn in dirty if pfn < self.frame_count]
        stats = ScanStats(
            words_visited=self.word_count,
            bits_visited=bits_visited,
            dirty_found=len(dirty),
        )
        return dirty, stats

    def harvest(self, optimized=True):
        dirty, stats = self.scan_by_words()
        self.clear()
        return dirty, stats
