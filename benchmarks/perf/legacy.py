"""Seed-revision reference implementations for the wall-clock suite.

These reproduce the pre-optimization hot paths the delta-checkpoint /
zero-copy PR replaced:

* ``LegacyCheckpointer`` — commit() propagates staged pages with a
  per-page Python loop and materializes a full ``bytes`` RAM image plus
  a deepcopy per committed epoch when history is enabled; rollback()
  diffs every frame of RAM against the backup in a Python loop; staging
  copies each dirty frame with ``read_frame`` and deep-copies the guest
  state dict (the seed's per-epoch snapshot).
* ``LegacyWordBitmap`` — the seed's list-of-ints dirty bitmap with the
  per-word Python-loop scan and the tail filter.

The wall-clock benchmarks time these against the live implementations so
``BENCH_wallclock_substrate.json`` records a true before/after on the
same host. Virtual-time outputs are identical on both sides by
construction; only host time differs.
"""

import copy

from repro.checkpoint.checkpointer import Checkpointer, CopyFidelity
from repro.checkpoint.snapshot import Checkpoint
from repro.errors import CheckpointError
from repro.guest.memory import PAGE_SIZE
from repro.hypervisor.dirty import ScanStats, WORD_BITS


class LegacyCheckpointer(Checkpointer):
    """Checkpointer with the seed revision's O(RAM) commit/rollback."""

    def start(self):
        super().start()
        if self.fidelity is CopyFidelity.FULL:
            # The seed kept the backup guest state as a live deepcopy,
            # not a frozen blob.
            self._backup_state = copy.deepcopy(self.domain.vm.state_dict())

    def run_checkpoint(self, interval_ms, synthetic_dirty=0):
        # Re-stage with per-frame byte copies and a deepcopy of the
        # guest state (the seed's staging path).
        report = super().run_checkpoint(interval_ms,
                                        synthetic_dirty=synthetic_dirty)
        if self._pending is not None and self._pending["pfns"] is not None:
            memory = self.domain.vm.memory
            self._pending["pages"] = [
                (pfn, memory.read_frame(pfn))
                for pfn in self._pending["pfns"]
            ]
            self._pending["state"] = copy.deepcopy(
                self.domain.vm.state_dict()
            )
        return report

    def commit(self):
        if self._pending is None:
            raise CheckpointError("no staged checkpoint to commit")
        sync = {"backoff_ms": 0.0, "retries": 0}
        self.last_sync_backoff_ms = 0.0
        pending, self._pending = self._pending, None
        self._pending_held = False
        if self._flight is not None:
            self._flight.record("epoch.commit", epoch=self.epoch,
                                dirty_pages=pending["dirty"])
        if self.fidelity is CopyFidelity.FULL:
            for pfn, data in pending["pages"]:
                start = pfn * PAGE_SIZE
                self._backup_image[start : start + PAGE_SIZE] = data
            self._backup_state = pending["state"]
            self._backup_taken_at = pending["taken_at"]
            if self.history.capacity:
                self.history.record(
                    Checkpoint(
                        epoch=self.epoch,
                        taken_at=pending["taken_at"],
                        memory_image=bytes(self._backup_image),
                        guest_state=copy.deepcopy(self._backup_state),
                        dirty_pages=pending["dirty"],
                        label="epoch-%d" % self.epoch,
                    )
                )
        return sync

    def rollback(self):
        vm = self.domain.vm
        differing = 0
        image = self._backup_image
        for pfn in range(vm.memory.frame_count):
            start = pfn * PAGE_SIZE
            if vm.memory.read_frame(pfn) != bytes(
                    image[start : start + PAGE_SIZE]):
                differing += 1
        vm.memory.load_bytes(bytes(image))
        vm.load_state_dict(copy.deepcopy(self._backup_state))
        self.domain.dirty_bitmap.clear()
        self._pending = None
        self._dirty_since_backup = set()
        self._untracked_seen = vm.memory.untracked_loads
        return self.costs.rollback_ms(differing)


class LegacyWordBitmap:
    """The seed's dirty bitmap: a Python list of 64-bit words."""

    def __init__(self, frame_count):
        self.frame_count = frame_count
        self.word_count = (frame_count + WORD_BITS - 1) // WORD_BITS
        self._words = [0] * self.word_count
        self._dirty_count = 0

    def set(self, pfn):
        word, bit = divmod(pfn, WORD_BITS)
        mask = 1 << bit
        if not self._words[word] & mask:
            self._words[word] |= mask
            self._dirty_count += 1

    def clear(self):
        self._words = [0] * self.word_count
        self._dirty_count = 0

    def scan_by_words(self):
        dirty = []
        bits_visited = 0
        for word_index, word in enumerate(self._words):
            if word == 0:
                continue
            base = word_index * WORD_BITS
            bits_visited += WORD_BITS
            while word:
                low = word & -word
                dirty.append(base + low.bit_length() - 1)
                word ^= low
        dirty = [pfn for pfn in dirty if pfn < self.frame_count]
        stats = ScanStats(
            words_visited=self.word_count,
            bits_visited=bits_visited,
            dirty_found=len(dirty),
        )
        return dirty, stats

    def harvest(self, optimized=True):
        dirty, stats = self.scan_by_words()
        self.clear()
        return dirty, stats


# -- seed-revision epoch-pipeline references (phase-attribution bench) ----

from repro.core.crimes import Crimes  # noqa: E402
from repro.detectors.base import Finding, Severity  # noqa: E402
from repro.detectors.canary import CanaryScanModule, KIND_CANARY, \
    KIND_FREED  # noqa: E402
from repro.errors import IntrospectionError  # noqa: E402
from repro.guest.layout import cstring  # noqa: E402
from repro.vmi.libvmi import VMIInstance, ProcessInfo, \
    _MAX_LIST_LENGTH  # noqa: E402


class LegacyVMIInstance(VMIInstance):
    """VMI with the seed revision's per-field decode hot paths.

    The seed's ``StructDef.decode`` was a per-field ``unpack_from`` loop
    (today's ``decode_scalar``); both overrides below replay the seed's
    exact call pattern so a timed scan pays the seed's host cost while
    charging the identical virtual time.
    """

    def read_canary_table(self, pid, table_va):
        from repro.guest.heap import CANARY_ENTRY, CANARY_TABLE_HEADER, \
            CANARY_TABLE_MAGIC

        header = CANARY_TABLE_HEADER.decode_scalar(
            self.read_va(table_va, CANARY_TABLE_HEADER.size, pid=pid)
        )
        if header["magic"] != CANARY_TABLE_MAGIC:
            raise IntrospectionError(
                "bad canary-table magic for pid %d: 0x%x"
                % (pid, header["magic"])
            )
        entries = []
        cursor = table_va + CANARY_TABLE_HEADER.size
        raw = self.read_va(cursor, header["count"] * CANARY_ENTRY.size,
                           pid=pid)
        for index in range(header["count"]):
            record = CANARY_ENTRY.decode_scalar(raw, index * CANARY_ENTRY.size)
            entries.append((record["addr"], record["size"], record["kind"]))
        return {"canary": header["canary"], "entries": entries}

    def _linux_task_list(self):
        layout = self.profile.struct("task_struct")
        head_va = self.lookup_symbol(self.profile.root_symbol("process_list"))
        processes = []
        current = head_va
        for _ in range(_MAX_LIST_LENGTH):
            record = layout.decode_scalar(self.read_va(current, layout.size))
            self._charge_us(self.costs.PER_PROCESS_US)
            processes.append(
                ProcessInfo(
                    pid=record["pid"],
                    name=cstring(record["comm"]),
                    object_va=current,
                    uid=record["uid"],
                    state=record["state"],
                    start_time=record["start_time"],
                    kernel_thread=bool(record["flags"] & 0x2),
                )
            )
            current = record["tasks_next"]
            if current == head_va:
                return processes
            if current == 0:
                raise IntrospectionError("task list broken: NULL tasks_next")
        raise IntrospectionError("task list does not terminate")


class LegacyCanaryScanModule(CanaryScanModule):
    """The seed's canary scan: a per-entry Python filter, no slab pass."""

    def scan(self, context):
        vmi = context.vmi
        findings = []
        try:
            directory = vmi.canary_directory()
        except IntrospectionError:
            return findings
        for pid, table_va in directory:
            try:
                table = vmi.read_canary_table(pid, table_va)
            except IntrospectionError:
                findings.append(
                    Finding(
                        self.name,
                        "table-corrupt",
                        Severity.CRITICAL,
                        "canary table of pid %d unreadable or corrupt" % pid,
                        {"pid": pid, "table_va": table_va},
                    )
                )
                continue
            expected = table["canary"]
            for addr, size, kind in table["entries"]:
                if kind == KIND_CANARY:
                    finding = self._check_canary(
                        context, pid, addr, size, expected
                    )
                elif kind == KIND_FREED and self.check_freed:
                    finding = self._check_freed(context, pid, addr, size)
                else:
                    finding = None
                if finding is not None:
                    findings.append(finding)
        return findings


class LegacyCrimes(Crimes):
    """Crimes with the seed revision's deepcopy program snapshots."""

    def _snapshot_program_states(self):
        self._clean_program_states = [
            copy.deepcopy(program.state_dict()) for program in self.programs
        ]
