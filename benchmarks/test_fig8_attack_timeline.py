"""Figure 8 / §5.5: the buffer-overflow attack-response timeline.

Paper anchors: exploit at t0 inside a 50 ms epoch; epoch ends ≈24.4 ms
later; suspend+scan ≈3 ms (scan itself <1 ms); replay prepared by
t0+29 ms; per-process memory dump ≈5 s; full system checkpoints written
to disk in 100+ s. The exploit's outputs never leave the hypervisor, and
replay pinpoints the exact store (rip) that clobbered the canary.
"""

from repro.experiments import fig8_attack_timeline
from repro.workloads.attacks import OVERFLOW_RIP


def render_milestones(milestones):
    lines = ["Figure 8 - CRIMES attack detection timeline "
             "(offsets from the exploit)"]
    for label, offset in milestones:
        lines.append("  %12.3f ms  %s" % (offset, label))
    return "\n".join(lines)


def test_fig8(run_once, record_result):
    fig8 = run_once(fig8_attack_timeline, interval_ms=50.0, seed=7)
    text = render_milestones(fig8["milestones"])
    text += "\n\npinpoint: %r" % fig8["pinpoint"]
    text += "\npackets that escaped during/after the attack: %d" % \
        fig8["escaped_packets"]
    record_result("fig8_attack_timeline", text)

    milestones = dict(
        (label, offset) for label, offset in fig8["milestones"]
    )
    detect = next(value for key, value in milestones.items()
                  if key.startswith("audit failed"))
    replay_ready = next(value for key, value in milestones.items()
                        if "replay prepared" in key)
    report = milestones["forensic report complete"]
    disk = milestones["system checkpoints written to disk"]

    assert 15.0 < detect < 45.0        # paper: ~24.4 ms + scan
    assert replay_ready < detect + 15  # paper: ready at +29 ms
    assert 4000.0 < report < 15000.0   # paper: ~5 s dump, report in seconds
    assert disk > 30000.0              # paper: "100+ sec" for large VMs
    assert fig8["pinpoint"].matched
    assert fig8["pinpoint"].rip == OVERFLOW_RIP
    assert fig8["escaped_packets"] == 0  # zero window of vulnerability
