"""Figure 5: effect of the epoch interval (60-200 ms) under Full
optimization for freqmine, swaptions, volrend, water-spatial:

(a) normalized runtime decreases with larger intervals,
(b) paused time increases (≈10-16 ms at the top end),
(c) dirty pages per epoch increase toward the several-thousand range.
"""

from repro.experiments import fig5_interval_sweep
from repro.metrics.tables import format_series

BENCHMARKS = ("freqmine", "swaptions", "volrend", "water-spatial")
INTERVALS = (60, 80, 100, 120, 140, 160, 180, 200)


def test_fig5(run_once, record_result):
    results = run_once(fig5_interval_sweep, benchmarks=BENCHMARKS,
                       intervals=INTERVALS)
    sections = []
    for key, label, fmt in (
        ("normalized_runtime", "Fig 5a - normalized runtime", "%.3f"),
        ("pause_ms", "Fig 5b - paused time (ms)", "%.2f"),
        ("dirty_pages", "Fig 5c - dirty pages per epoch", "%.0f"),
    ):
        for benchmark in BENCHMARKS:
            series = results[benchmark]
            sections.append(
                format_series(
                    "%s [%s]" % (label, benchmark),
                    [row["interval"] for row in series],
                    [row[key] for row in series],
                    x_label="interval_ms", y_label=key, fmt=fmt,
                )
            )
    record_result("fig5_interval_sweep", "\n\n".join(sections))

    for benchmark in BENCHMARKS:
        series = results[benchmark]
        runtimes = [row["normalized_runtime"] for row in series]
        pauses = [row["pause_ms"] for row in series]
        dirty = [row["dirty_pages"] for row in series]
        assert runtimes[0] > runtimes[-1]         # 5a: improves
        assert pauses[0] < pauses[-1]             # 5b: grows
        assert 6.0 < pauses[-1] < 18.0            # 5b: 10-16 ms regime
        assert dirty[0] < dirty[-1] < 8000        # 5c: grows toward ~5k
