"""Ablation: synchronous vs asynchronous deep scanning (§5.3 extension).

The paper rules out running Volatility-class scans synchronously ("this
overhead is infeasible for running synchronously at every checkpoint
interval") and sketches asynchronous scanning of the last checkpoint as
future work. This ablation quantifies the trade on a fileless in-memory
payload that only a full-RAM signature sweep can find:

* fast modules only  — low pause, attack never detected;
* synchronous sweep  — attack caught in-epoch, pause explodes;
* asynchronous sweep — pause identical to fast-only, attack caught with
  a bounded detection lag.
"""

from repro.core.config import CrimesConfig
from repro.core.crimes import Crimes
from repro.detectors.canary import CanaryScanModule
from repro.detectors.deep import SignatureSweepModule, SynchronousDeepAdapter
from repro.guest.linux import LinuxGuest
from repro.metrics.tables import format_table
from repro.workloads.attacks import MemoryResidentMalware

INTERVAL_MS = 50.0
TRIGGER_EPOCH = 2
MAX_EPOCHS = 30


def _run(configure):
    vm = LinuxGuest(name="ablation-async", memory_bytes=8 * 1024 * 1024,
                    seed=81)
    crimes = Crimes(
        vm,
        CrimesConfig(epoch_interval_ms=INTERVAL_MS, auto_respond=False,
                     seed=81),
    )
    crimes.install_module(CanaryScanModule())
    configure(crimes)
    attack = crimes.add_program(MemoryResidentMalware(
        trigger_epoch=TRIGGER_EPOCH))
    crimes.start()
    evidence_time = None
    while crimes.epochs_run < MAX_EPOCHS and not crimes.suspended:
        record = crimes.run_epoch()
        if attack.staged and evidence_time is None:
            evidence_time = record.start_ms
    detected = crimes.suspended
    if detected and crimes.last_async_verdict is not None:
        latency = crimes.clock.now - evidence_time
    elif detected:
        latency = crimes.clock.now - evidence_time
    else:
        latency = float("inf")
    return {
        "mean_pause_ms": crimes.mean_pause_ms(),
        "detected": detected,
        "detection_latency_ms": latency,
    }


def test_ablation_async_scan(run_once, record_result):
    def compute():
        return {
            "fast-only": _run(lambda crimes: None),
            "sync-sweep": _run(
                lambda crimes: crimes.install_module(
                    SynchronousDeepAdapter(SignatureSweepModule())
                )
            ),
            "async-sweep": _run(
                lambda crimes: crimes.install_async_module(
                    SignatureSweepModule()
                )
            ),
        }

    results = run_once(compute)
    rows = [
        {
            "configuration": name,
            "mean_pause_ms": "%.2f" % outcome["mean_pause_ms"],
            "detected": outcome["detected"],
            "detection_latency_ms": (
                "%.1f" % outcome["detection_latency_ms"]
                if outcome["detected"] else "never"
            ),
        }
        for name, outcome in results.items()
    ]
    record_result(
        "ablation_async_scan",
        format_table(
            rows,
            ["configuration", "mean_pause_ms", "detected",
             "detection_latency_ms"],
            title="Ablation - deep scanning placement (fileless payload, "
                  "50 ms epochs)",
        ),
    )

    fast = results["fast-only"]
    sync = results["sync-sweep"]
    async_ = results["async-sweep"]
    # Fast modules alone never see the fileless payload.
    assert not fast["detected"]
    # Synchronous deep scanning detects within its own (inflated) epoch
    # but wrecks the pause: the sweep itself dominates the latency.
    assert sync["detected"]
    assert sync["mean_pause_ms"] > 5 * fast["mean_pause_ms"]
    assert sync["detection_latency_ms"] < \
        INTERVAL_MS + 1.5 * sync["mean_pause_ms"]
    # Asynchronous scanning keeps the pause flat and still detects,
    # with a bounded (multi-epoch) lag.
    assert async_["detected"]
    assert async_["mean_pause_ms"] < fast["mean_pause_ms"] * 1.05
    assert INTERVAL_MS < async_["detection_latency_ms"] < 1500.0
